"""Control flow graph analyses over IR functions.

Task selection (Section 3 of the paper) needs, per function:

* successor / predecessor maps,
* a depth-first numbering (the paper's ``dfs_num``, used to classify
  back edges as terminal),
* dominators and natural loops (headers, bodies, back edges), used by
  the task-size heuristic (loop unrolling, loop entry/exit edges
  terminate tasks).

All analyses are pure functions of the :class:`~repro.ir.function.Function`
and return a :class:`CFG` snapshot; rebuild after IR transforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.ir.function import Function

Edge = Tuple[str, str]
"""Intra-function CFG edge as ``(source_label, target_label)``."""


@dataclass
class Loop:
    """A natural loop: header, body blocks (incl. header), back edges."""

    header: str
    body: FrozenSet[str]
    back_edges: Tuple[Edge, ...]

    def __contains__(self, label: str) -> bool:
        return label in self.body

    @property
    def size_blocks(self) -> int:
        """Number of blocks in the loop body."""
        return len(self.body)


@dataclass
class CFG:
    """Immutable CFG snapshot of one function."""

    function: Function
    succs: Dict[str, List[str]]
    preds: Dict[str, List[str]]
    dfs_num: Dict[str, int]
    rpo: List[str]
    back_edges: Set[Edge]
    idom: Dict[str, Optional[str]]
    loops: List[Loop] = field(default_factory=list)

    # --------------------------------------------------------------- loops

    def loop_of_header(self, label: str) -> Optional[Loop]:
        """The loop headed at ``label``, or ``None``."""
        for loop in self.loops:
            if loop.header == label:
                return loop
        return None

    def innermost_loop(self, label: str) -> Optional[Loop]:
        """The smallest loop containing ``label``, or ``None``."""
        best: Optional[Loop] = None
        for loop in self.loops:
            if label in loop and (best is None or loop.size_blocks < best.size_blocks):
                best = loop
        return best

    def is_loop_header(self, label: str) -> bool:
        """True if ``label`` heads a natural loop."""
        return any(loop.header == label for loop in self.loops)

    def is_back_edge(self, src: str, dst: str) -> bool:
        """True if ``src -> dst`` is a DFS back edge."""
        return (src, dst) in self.back_edges

    def is_loop_entry_edge(self, src: str, dst: str) -> bool:
        """True if the edge enters a loop from outside (not a back edge)."""
        if self.is_back_edge(src, dst):
            return False
        for loop in self.loops:
            if dst in loop and src not in loop:
                return True
        return False

    def is_loop_exit_edge(self, src: str, dst: str) -> bool:
        """True if the edge leaves some loop containing ``src``."""
        for loop in self.loops:
            if src in loop and dst not in loop:
                return True
        return False

    def dominates(self, a: str, b: str) -> bool:
        """True if block ``a`` dominates block ``b``."""
        node: Optional[str] = b
        while node is not None:
            if node == a:
                return True
            node = self.idom[node]
        return False

    # --------------------------------------------------------- reachability

    def reachable_between(self, src: str, dst: str) -> Set[str]:
        """Blocks on some path ``src -> ... -> dst`` (inclusive).

        Paths may not traverse back edges (tasks are acyclic inside,
        so the codependent set of a def-use pair only needs forward
        paths).  Returns the empty set if no such path exists.
        """
        forward: Set[str] = set()
        stack = [src]
        while stack:
            node = stack.pop()
            if node in forward:
                continue
            forward.add(node)
            for nxt in self.succs[node]:
                if not self.is_back_edge(node, nxt):
                    stack.append(nxt)
        if dst not in forward:
            return set()
        # Backward sweep from dst restricted to forward-reachable nodes.
        on_path: Set[str] = set()
        stack = [dst]
        while stack:
            node = stack.pop()
            if node in on_path:
                continue
            on_path.add(node)
            for prev in self.preds[node]:
                if prev in forward and not self.is_back_edge(prev, node):
                    stack.append(prev)
        return on_path


def build_cfg(function: Function) -> CFG:
    """Compute the full CFG snapshot of ``function``."""
    succs: Dict[str, List[str]] = {}
    preds: Dict[str, List[str]] = {lbl: [] for lbl in function.labels()}
    for blk in function.blocks():
        succs[blk.label] = blk.successor_labels()
    for src, targets in succs.items():
        for dst in targets:
            preds[dst].append(src)

    dfs_num, back_edges = _dfs(function.entry_label or "", succs)
    rpo = _reverse_postorder(function.entry_label or "", succs)
    idom = _dominators(function.entry_label or "", rpo, preds)
    loops = _natural_loops(back_edges, preds, idom, rpo)
    return CFG(
        function=function,
        succs=succs,
        preds=preds,
        dfs_num=dfs_num,
        rpo=rpo,
        back_edges=back_edges,
        idom=idom,
        loops=loops,
    )


def _dfs(entry: str, succs: Dict[str, List[str]]) -> Tuple[Dict[str, int], Set[Edge]]:
    """Iterative DFS: preorder numbers and back edges (to an ancestor)."""
    dfs_num: Dict[str, int] = {}
    back_edges: Set[Edge] = set()
    on_stack: Set[str] = set()
    counter = 0
    # Stack of (node, iterator-state) simulated with explicit index.
    stack: List[Tuple[str, int]] = [(entry, 0)]
    dfs_num[entry] = counter
    counter += 1
    on_stack.add(entry)
    while stack:
        node, idx = stack[-1]
        children = succs.get(node, [])
        if idx < len(children):
            stack[-1] = (node, idx + 1)
            child = children[idx]
            if child not in dfs_num:
                dfs_num[child] = counter
                counter += 1
                on_stack.add(child)
                stack.append((child, 0))
            elif child in on_stack:
                back_edges.add((node, child))
        else:
            stack.pop()
            on_stack.discard(node)
    return dfs_num, back_edges


def _reverse_postorder(entry: str, succs: Dict[str, List[str]]) -> List[str]:
    """Reverse postorder of reachable blocks."""
    post: List[str] = []
    visited: Set[str] = {entry}
    stack: List[Tuple[str, int]] = [(entry, 0)]
    while stack:
        node, idx = stack[-1]
        children = succs.get(node, [])
        if idx < len(children):
            stack[-1] = (node, idx + 1)
            child = children[idx]
            if child not in visited:
                visited.add(child)
                stack.append((child, 0))
        else:
            stack.pop()
            post.append(node)
    post.reverse()
    return post


def _dominators(
    entry: str, rpo: List[str], preds: Dict[str, List[str]]
) -> Dict[str, Optional[str]]:
    """Cooper-Harvey-Kennedy iterative immediate-dominator computation."""
    order = {label: i for i, label in enumerate(rpo)}
    idom: Dict[str, Optional[str]] = {label: None for label in rpo}
    idom[entry] = entry

    def intersect(a: str, b: str) -> str:
        while a != b:
            while order[a] > order[b]:
                a = idom[a]  # type: ignore[assignment]
            while order[b] > order[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == entry:
                continue
            candidates = [p for p in preds[node] if p in order and idom[p] is not None]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom[node] != new_idom:
                idom[node] = new_idom
                changed = True
    idom[entry] = None
    return idom


def _natural_loops(
    back_edges: Set[Edge],
    preds: Dict[str, List[str]],
    idom: Dict[str, Optional[str]],
    rpo: List[str],
) -> List[Loop]:
    """Natural loops from back edges whose target dominates the source.

    Back edges to non-dominating targets (irreducible flow) still
    terminate tasks via the DFS back-edge rule but do not form a
    :class:`Loop`.
    """
    reachable = set(rpo)
    by_header: Dict[str, Tuple[Set[str], List[Edge]]] = {}
    for src, header in sorted(back_edges):
        if src not in reachable or header not in reachable:
            continue
        if not _dominates(idom, header, src):
            continue
        body, edges = by_header.setdefault(header, ({header}, []))
        edges.append((src, header))
        stack = [src]
        while stack:
            node = stack.pop()
            if node in body:
                continue
            body.add(node)
            stack.extend(p for p in preds[node] if p in reachable)
    loops = [
        Loop(header=h, body=frozenset(body), back_edges=tuple(edges))
        for h, (body, edges) in by_header.items()
    ]
    loops.sort(key=lambda lp: (len(lp.body), lp.header))
    return loops


def _dominates(idom: Dict[str, Optional[str]], a: str, b: str) -> bool:
    node: Optional[str] = b
    while node is not None:
        if node == a:
            return True
        node = idom.get(node)
    return False
