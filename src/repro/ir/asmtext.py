"""Textual assembly for the reproduction IR.

Lets workloads be written, stored, and diffed as plain text, and makes
partitions and transforms inspectable.  The format round-trips:
``parse_program(program_to_text(p))`` reproduces ``p`` exactly.

Example::

    .main main
    .func main
    entry:
        li      r1, #0
        li      r2, #10
        jump    @body
    body:
        add     r3, r3, r1
        load    r4, [r2 + 8]
        store   r4, [r2 + 16]
        add     r1, r1, #1
        slt     r9, r1, r2
        bnez    r9, @body, @done
    done:
        halt
    .memory 100 3.5

Syntax rules:

* ``.main NAME`` (optional, default ``main``) picks the entry function;
  ``.func NAME`` opens a function; ``label:`` opens a block.
* Register operands are bare (``r1``/``f2``); immediates are ``#``-
  prefixed; memory operands are ``[base + offset]`` (offset may be
  negative); control targets are ``@``-prefixed.
* Conditional branches and calls carry their fallthrough as a second
  ``@`` operand; a block with no terminator lists its fallthrough on a
  trailing ``fallthrough @label`` line (emitted only when needed).
* ``.memory ADDR VALUE`` populates the initial memory image.
* ``#`` at line start or ``;`` anywhere begins a comment.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Opcode
from repro.ir.program import Program


class AsmSyntaxError(ValueError):
    """A line could not be parsed; carries the line number."""

    def __init__(self, line_no: int, line: str, reason: str) -> None:
        super().__init__(f"line {line_no}: {reason}: {line.strip()!r}")
        self.line_no = line_no


# ------------------------------------------------------------------ printing


def _format_instruction(ins: Instruction) -> str:
    op = ins.opcode
    if op is Opcode.LOAD:
        return f"load    {ins.dst}, [{ins.srcs[0]} + {int(ins.imm or 0)}]"
    if op is Opcode.STORE:
        return (
            f"store   {ins.srcs[0]}, [{ins.srcs[1]} + {int(ins.imm or 0)}]"
        )
    if op in (Opcode.BEQZ, Opcode.BNEZ):
        return f"{op.value:<7} {ins.srcs[0]}, @{ins.target}"
    if op is Opcode.JUMP:
        return f"jump    @{ins.target}"
    if op is Opcode.CALL:
        return f"call    @{ins.target}"
    if op in (Opcode.RET, Opcode.HALT):
        return op.value
    operands: List[str] = []
    if ins.dst is not None:
        operands.append(ins.dst)
    operands.extend(ins.srcs)
    if ins.imm is not None:
        operands.append(f"#{ins.imm}")
    return f"{op.value:<7} " + ", ".join(operands)


def program_to_text(program: Program) -> str:
    """Serialise ``program`` to the assembly text format."""
    lines: List[str] = [f".main {program.main_name}"]
    for func in program.functions():
        lines.append(f".func {func.name}")
        for label in func.labels():
            blk = func.block(label)
            lines.append(f"{label}:")
            term = blk.terminator
            for ins in blk.instructions:
                text = _format_instruction(ins)
                if ins is term and ins.opcode in (
                    Opcode.BEQZ, Opcode.BNEZ, Opcode.CALL
                ):
                    text += f", @{blk.fallthrough}"
                lines.append(f"    {text}")
            if term is None and blk.fallthrough is not None:
                lines.append(f"    fallthrough @{blk.fallthrough}")
    for addr in sorted(program.memory_image):
        lines.append(f".memory {addr} {program.memory_image[addr]}")
    return "\n".join(lines) + "\n"


# ------------------------------------------------------------------- parsing


def _parse_number(token: str, line_no: int, line: str) -> float:
    try:
        value = float(token)
    except ValueError:
        raise AsmSyntaxError(line_no, line, f"bad number {token!r}") from None
    if value.is_integer() and ("." not in token and "e" not in token.lower()):
        return int(value)
    return value


def _parse_operands(rest: str) -> List[str]:
    return [tok.strip() for tok in rest.split(",") if tok.strip()]


def _parse_mem_operand(
    token: str, line_no: int, line: str
) -> Tuple[str, int]:
    if not (token.startswith("[") and token.endswith("]")):
        raise AsmSyntaxError(line_no, line, f"bad memory operand {token!r}")
    inner = token[1:-1].replace(" ", "")
    if "+-" in inner:
        base, offset = inner.split("+-", 1)
        return base, -int(offset)
    if "+" in inner:
        base, offset = inner.split("+", 1)
        return base, int(offset)
    return inner, 0


def _parse_instruction(
    mnemonic: str, operands: List[str], line_no: int, line: str
) -> Tuple[Instruction, Optional[str]]:
    """Returns (instruction, explicit fallthrough label or None)."""
    try:
        op = Opcode(mnemonic)
    except ValueError:
        raise AsmSyntaxError(
            line_no, line, f"unknown mnemonic {mnemonic!r}"
        ) from None

    if op is Opcode.LOAD:
        base, offset = _parse_mem_operand(operands[1], line_no, line)
        return Instruction(op, dst=operands[0], srcs=(base,), imm=offset), None
    if op is Opcode.STORE:
        base, offset = _parse_mem_operand(operands[1], line_no, line)
        return (
            Instruction(op, srcs=(operands[0], base), imm=offset),
            None,
        )
    if op in (Opcode.BEQZ, Opcode.BNEZ):
        target = operands[1].lstrip("@")
        fallthrough = (
            operands[2].lstrip("@") if len(operands) > 2 else None
        )
        return (
            Instruction(op, srcs=(operands[0],), target=target),
            fallthrough,
        )
    if op is Opcode.JUMP:
        return Instruction(op, target=operands[0].lstrip("@")), None
    if op is Opcode.CALL:
        target = operands[0].lstrip("@")
        fallthrough = (
            operands[1].lstrip("@") if len(operands) > 1 else None
        )
        return Instruction(op, target=target), fallthrough
    if op in (Opcode.RET, Opcode.HALT):
        return Instruction(op), None

    # ALU forms: dst first, then sources / immediate.
    if not operands:
        raise AsmSyntaxError(line_no, line, "missing operands")
    dst = operands[0]
    srcs: List[str] = []
    imm: Optional[float] = None
    for token in operands[1:]:
        if token.startswith("#"):
            imm = _parse_number(token[1:], line_no, line)
        else:
            srcs.append(token)
    return Instruction(op, dst=dst, srcs=tuple(srcs), imm=imm), None


def parse_program(text: str) -> Program:
    """Parse the assembly text format into a validated program."""
    main_name = "main"
    functions: List[Function] = []
    func: Optional[Function] = None
    block: Optional[BasicBlock] = None
    memory: List[Tuple[int, float]] = []

    def close_block() -> None:
        nonlocal block
        block = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].rstrip()
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith(".main"):
            main_name = stripped.split()[1]
            continue
        if stripped.startswith(".memory"):
            parts = stripped.split()
            if len(parts) != 3:
                raise AsmSyntaxError(line_no, line, "expected .memory A V")
            addr = int(parts[1])
            memory.append((addr, _parse_number(parts[2], line_no, line)))
            continue
        if stripped.startswith(".func"):
            func = Function(stripped.split()[1])
            functions.append(func)
            close_block()
            continue
        if stripped.endswith(":") and " " not in stripped:
            if func is None:
                raise AsmSyntaxError(line_no, line, "label outside .func")
            label = stripped[:-1]
            new_block = BasicBlock(label=label, instructions=[])
            if block is not None and block.terminator is None \
                    and block.fallthrough is None:
                block.fallthrough = label
            func.add_block(new_block)
            block = new_block
            continue
        if block is None:
            raise AsmSyntaxError(line_no, line, "instruction outside block")
        if stripped.startswith("fallthrough"):
            block.fallthrough = stripped.split("@", 1)[1].strip()
            continue
        parts = stripped.split(None, 1)
        mnemonic = parts[0]
        operands = _parse_operands(parts[1]) if len(parts) > 1 else []
        instruction, fallthrough = _parse_instruction(
            mnemonic, operands, line_no, line
        )
        block.instructions.append(instruction)
        if fallthrough is not None:
            block.fallthrough = fallthrough

    program = Program(main=main_name)
    for fn in functions:
        program.add_function(fn)
    for addr, value in memory:
        program.memory_image[addr] = value
    program.validate()
    return program
