"""Dataflow analyses: reaching definitions, def-use chains, liveness.

The data dependence heuristic (Section 3.4) identifies register def-use
dependences "entirely by the compiler using traditional def-use
dataflow equations" and steers task growth along their *codependent
sets* (all blocks on control flow paths from producer to consumer).

Analyses operate per function at block granularity over register
names; memory dependences are deliberately not analysed (the paper
relies on the ARB + synchronisation hardware for those).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.ir.cfg import CFG
from repro.ir.function import Function

DefSite = Tuple[str, int, str]
"""A definition site: ``(block_label, instruction_index, register)``."""


@dataclass(frozen=True)
class DefUseEdge:
    """A register def-use dependence between (possibly equal) blocks."""

    register: str
    def_block: str
    def_index: int
    use_block: str
    use_index: int

    @property
    def crosses_blocks(self) -> bool:
        """True if producer and consumer are in different blocks."""
        return self.def_block != self.use_block


def block_defs_uses(
    function: Function,
) -> Tuple[Dict[str, Dict[str, int]], Dict[str, Set[str]]]:
    """Per block: last definition index per register, and upward-exposed uses.

    Returns ``(defs, uses)`` where ``defs[label][reg]`` is the index of
    the last instruction in ``label`` writing ``reg`` and
    ``uses[label]`` is the set of registers read in ``label`` before
    any local write.
    """
    defs: Dict[str, Dict[str, int]] = {}
    uses: Dict[str, Set[str]] = {}
    for blk in function.blocks():
        local_defs: Dict[str, int] = {}
        exposed: Set[str] = set()
        for idx, ins in enumerate(blk.instructions):
            for reg in ins.reads:
                if reg not in local_defs:
                    exposed.add(reg)
            written = ins.writes
            if written is not None:
                local_defs[written] = idx
        defs[blk.label] = local_defs
        uses[blk.label] = exposed
    return defs, uses


def reaching_definitions(
    function: Function, cfg: CFG
) -> Dict[str, Set[DefSite]]:
    """IN sets of the classic reaching-definitions problem, per block.

    ``result[label]`` is the set of definition sites that reach the
    entry of ``label``.  Only the *last* write of a register in a block
    generates a definition (earlier writes are locally killed).
    """
    defs, _uses = block_defs_uses(function)
    gen: Dict[str, Set[DefSite]] = {}
    kill_regs: Dict[str, Set[str]] = {}
    for label, local in defs.items():
        gen[label] = {(label, idx, reg) for reg, idx in local.items()}
        kill_regs[label] = set(local)

    in_sets: Dict[str, Set[DefSite]] = {lbl: set() for lbl in cfg.rpo}
    out_sets: Dict[str, Set[DefSite]] = {lbl: set(gen.get(lbl, set())) for lbl in cfg.rpo}
    changed = True
    while changed:
        changed = False
        for label in cfg.rpo:
            new_in: Set[DefSite] = set()
            for pred in cfg.preds[label]:
                if pred in out_sets:
                    new_in |= out_sets[pred]
            survivors = {
                site for site in new_in if site[2] not in kill_regs.get(label, set())
            }
            new_out = survivors | gen.get(label, set())
            if new_in != in_sets[label] or new_out != out_sets[label]:
                in_sets[label] = new_in
                out_sets[label] = new_out
                changed = True
    return in_sets


def def_use_chains(function: Function, cfg: CFG) -> List[DefUseEdge]:
    """All register def-use edges of ``function``.

    Intra-block chains connect each use to the closest preceding local
    definition; upward-exposed uses connect to every reaching
    definition from predecessors.  The result is deterministic
    (sorted).
    """
    reach_in = reaching_definitions(function, cfg)
    edges: Set[DefUseEdge] = set()
    for blk in function.blocks():
        if blk.label not in reach_in:
            continue  # unreachable
        # register -> most recent local def index
        local: Dict[str, int] = {}
        reaching_by_reg: Dict[str, List[DefSite]] = {}
        for site in reach_in[blk.label]:
            reaching_by_reg.setdefault(site[2], []).append(site)
        for idx, ins in enumerate(blk.instructions):
            for reg in ins.reads:
                if reg in local:
                    edges.add(
                        DefUseEdge(
                            register=reg,
                            def_block=blk.label,
                            def_index=local[reg],
                            use_block=blk.label,
                            use_index=idx,
                        )
                    )
                else:
                    for def_blk, def_idx, _reg in reaching_by_reg.get(reg, []):
                        edges.add(
                            DefUseEdge(
                                register=reg,
                                def_block=def_blk,
                                def_index=def_idx,
                                use_block=blk.label,
                                use_index=idx,
                            )
                        )
            written = ins.writes
            if written is not None:
                local[written] = idx
    return sorted(
        edges,
        key=lambda e: (e.def_block, e.def_index, e.use_block, e.use_index, e.register),
    )


def live_registers(function: Function, cfg: CFG) -> Dict[str, Set[str]]:
    """Live-in register sets per block (backward liveness analysis).

    Used by the register-communication model: a task need not forward
    registers that are dead at its exits (the paper's "dead register
    analysis").
    """
    defs, uses = block_defs_uses(function)
    live_in: Dict[str, Set[str]] = {lbl: set() for lbl in cfg.rpo}
    live_out: Dict[str, Set[str]] = {lbl: set() for lbl in cfg.rpo}
    changed = True
    while changed:
        changed = False
        for label in reversed(cfg.rpo):
            new_out: Set[str] = set()
            for succ in cfg.succs[label]:
                if succ in live_in:
                    new_out |= live_in[succ]
            new_in = uses[label] | (new_out - set(defs[label]))
            if new_in != live_in[label] or new_out != live_out[label]:
                live_in[label] = new_in
                live_out[label] = new_out
                changed = True
    return live_in


def codependent_set(cfg: CFG, edge: DefUseEdge) -> Set[str]:
    """Blocks on any forward path from producer block to consumer block.

    This is the paper's *codependent set*: to enclose a def-use edge in
    a task, every block on every control-flow path from its producer
    to its consumer must be included (Section 3.4).  For an intra-block
    edge this is just the block itself.
    """
    if not edge.crosses_blocks:
        return {edge.def_block}
    return cfg.reachable_between(edge.def_block, edge.use_block)
