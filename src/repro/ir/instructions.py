"""Instruction set of the reproduction IR.

A deliberately small RISC-like ISA, rich enough to express the SPEC95
stand-in workloads and to drive the Multiscalar timing model:

* integer ALU ops (add/sub/mul/div/logic/shifts/compares),
* floating point ops (on a separate register file),
* loads and stores (word addressed, integer or fp payload),
* control transfers (conditional branches, jumps, calls, returns,
  halt).

Registers are named strings: ``"r0"``–``"r31"`` for integers (``r0``
is hard-wired to zero, as in MIPS) and ``"f0"``–``"f15"`` for floating
point.  Instructions are value objects; identity of a *static*
instruction is its ``(function, block, index)`` position, carried by
the containers rather than the instruction itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

INT_REGISTER_COUNT = 32
FP_REGISTER_COUNT = 16

ZERO_REG = "r0"


def int_reg(index: int) -> str:
    """Return the name of integer register ``index`` (0..31)."""
    if not 0 <= index < INT_REGISTER_COUNT:
        raise ValueError(f"integer register index out of range: {index}")
    return f"r{index}"


def fp_reg(index: int) -> str:
    """Return the name of floating point register ``index`` (0..15)."""
    if not 0 <= index < FP_REGISTER_COUNT:
        raise ValueError(f"fp register index out of range: {index}")
    return f"f{index}"


def is_int_reg(name: str) -> bool:
    """True if ``name`` names an integer register."""
    return name.startswith("r") and name[1:].isdigit()


def is_fp_reg(name: str) -> bool:
    """True if ``name`` names a floating point register."""
    return name.startswith("f") and name[1:].isdigit()


class OpClass(enum.Enum):
    """Functional-unit class of an opcode (Section 4.2 PU configuration)."""

    INT = "int"
    FP = "fp"
    MEM = "mem"
    BRANCH = "branch"


class Opcode(enum.Enum):
    """All opcodes of the IR.

    The ``value`` is the assembly mnemonic used by ``Instruction.__str__``.
    """

    # Integer ALU.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    SLT = "slt"  # set if less-than
    SLE = "sle"  # set if less-or-equal
    SEQ = "seq"  # set if equal
    SNE = "sne"  # set if not-equal
    LI = "li"  # load immediate
    MOV = "mov"
    # Floating point.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FMOV = "fmov"
    FLI = "fli"  # fp load immediate
    CVTIF = "cvtif"  # int -> fp
    CVTFI = "cvtfi"  # fp -> int (truncating)
    # Memory (address = src_reg + imm; payload register class decides int/fp).
    LOAD = "load"
    STORE = "store"
    # Control.
    BEQZ = "beqz"
    BNEZ = "bnez"
    JUMP = "jump"
    CALL = "call"
    RET = "ret"
    HALT = "halt"

    # Classification attributes, populated per member after the class
    # body (plain attributes, not properties: these are read millions
    # of times in the interpreter and trace-packing loops, and a
    # descriptor plus a dict lookup per read dominated those loops):
    #
    # * ``is_branch`` — True for conditional branches.
    # * ``is_control`` — True for any control transfer instruction.
    # * ``is_memory`` — True for loads and stores.
    # * ``op_class`` — :class:`OpClass` this opcode executes on.
    # * ``latency`` — execution latency in cycles, excluding memory
    #   access time.
    is_branch: bool
    is_control: bool
    is_memory: bool
    op_class: "OpClass"
    latency: int


_CONTROL_OPS = frozenset(
    {Opcode.BEQZ, Opcode.BNEZ, Opcode.JUMP, Opcode.CALL, Opcode.RET, Opcode.HALT}
)

_FP_OPS = frozenset(
    {
        Opcode.FADD,
        Opcode.FSUB,
        Opcode.FMUL,
        Opcode.FDIV,
        Opcode.FMOV,
        Opcode.FLI,
        Opcode.CVTIF,
        Opcode.CVTFI,
    }
)

_OP_CLASS = {}
for _op in Opcode:
    if _op in _CONTROL_OPS:
        _OP_CLASS[_op] = OpClass.BRANCH
    elif _op in (Opcode.LOAD, Opcode.STORE):
        _OP_CLASS[_op] = OpClass.MEM
    elif _op in _FP_OPS:
        _OP_CLASS[_op] = OpClass.FP
    else:
        _OP_CLASS[_op] = OpClass.INT

_LATENCY = {
    Opcode.MUL: 3,
    Opcode.DIV: 12,
    Opcode.REM: 12,
    Opcode.FADD: 2,
    Opcode.FSUB: 2,
    Opcode.FMUL: 4,
    Opcode.FDIV: 12,
    Opcode.CVTIF: 2,
    Opcode.CVTFI: 2,
}
for _op in Opcode:
    _LATENCY.setdefault(_op, 1)

for _op in Opcode:
    _op.is_branch = _op is Opcode.BEQZ or _op is Opcode.BNEZ
    _op.is_control = _op in _CONTROL_OPS
    _op.is_memory = _op is Opcode.LOAD or _op is Opcode.STORE
    _op.op_class = _OP_CLASS[_op]
    _op.latency = _LATENCY[_op]


@dataclass(frozen=True)
class Instruction:
    """A single IR instruction.

    Fields:

    * ``opcode`` — the :class:`Opcode`.
    * ``dst`` — destination register name, or ``None``.
    * ``srcs`` — tuple of source register names (order significant).
    * ``imm`` — immediate operand (int or float), or ``None``.
    * ``target`` — control target label: a block label for
      branches/jumps, a function name for calls.

    Encoding conventions:

    * ``LOAD dst, srcs[0] + imm`` — address is ``srcs[0] + imm``.
    * ``STORE srcs[0] -> srcs[1] + imm`` — value ``srcs[0]`` stored at
      ``srcs[1] + imm``.
    * ``BEQZ srcs[0], target`` — branch to ``target`` if zero; the
      fallthrough successor is the block's ``fallthrough`` field.
    * ``CALL target`` — arguments are passed in ``r4``–``r7`` /
      ``f4``–``f7`` by convention; result in ``r2`` / ``f2``.
    """

    opcode: Opcode
    dst: Optional[str] = None
    srcs: Tuple[str, ...] = field(default_factory=tuple)
    imm: Optional[float] = None
    target: Optional[str] = None

    # Derived operand views, precomputed in ``__post_init__`` (plain
    # attributes for the same hot-loop reason as the Opcode flags):
    #
    # * ``reads`` — register names this instruction reads, excluding
    #   ``r0``.
    # * ``writes`` — register name this instruction writes, or
    #   ``None``; writes to ``r0`` are discarded and reported as
    #   ``None``.
    reads: Tuple[str, ...] = field(init=False, repr=False, compare=False)
    writes: Optional[str] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.srcs, tuple):
            object.__setattr__(self, "srcs", tuple(self.srcs))
        object.__setattr__(
            self, "reads", tuple(s for s in self.srcs if s != ZERO_REG)
        )
        object.__setattr__(
            self, "writes", None if self.dst == ZERO_REG else self.dst
        )

    def __str__(self) -> str:
        parts = [self.opcode.value]
        operands = []
        if self.dst is not None:
            operands.append(self.dst)
        operands.extend(self.srcs)
        if self.imm is not None:
            operands.append(str(self.imm))
        if self.target is not None:
            operands.append(f"@{self.target}")
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)
