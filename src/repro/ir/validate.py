"""IR well-formedness validation beyond the structural invariants.

``Program.validate()`` checks local structure (terminators, label
resolution within a function, CALL targets).  This module layers the
whole-program lint the fuzzing campaign and the test suite run on
every workload:

* **targets resolve** — every branch / jump / fallthrough label names
  a block of its function, every CALL names a function, ``main``
  exists (re-checked here so one call reports *all* issues instead of
  raising on the first);
* **reachability** — every block is reachable from its function's
  entry (dead blocks are latent bugs in hand-written workloads and
  are never emitted by the generator);
* **no undefined register reads** — an interprocedural *must-defined*
  analysis over the flat global register file: a register may be read
  only where it has been written on **every** path from program entry
  (``r0`` is the hardwired zero).  The interpreter zero-initialises
  registers, so a violation is not a crash — it is a program whose
  meaning silently depends on implicit zeros, which is exactly the
  kind of latent workload bug differential fuzzing should not have to
  reason about.

``well_formed`` returns a list of human-readable issue strings (empty
means clean) so tests can assert on the whole report;
``assert_well_formed`` raises instead.  ``partition_issues`` checks
the task-selection output: every task region must have a **single
entry** — no CFG edge from outside a task may target a non-root
member block.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.ir.block import BlockId
from repro.ir.function import Function
from repro.ir.instructions import Opcode
from repro.ir.program import Program

#: the hardwired zero register: always readable, writes discarded
ZERO = "r0"

#: analysis state: the set of must-defined registers, or ``None`` for
#: the optimistic top element ("everything defined", i.e. unvisited)
_State = Optional[FrozenSet[str]]


class WellFormednessError(ValueError):
    """Raised by :func:`assert_well_formed`; carries all issues."""

    def __init__(self, program_name: str, issues: List[str]) -> None:
        self.issues = issues
        lines = "\n".join(f"  - {issue}" for issue in issues)
        super().__init__(
            f"program {program_name!r} is not well-formed "
            f"({len(issues)} issue(s)):\n{lines}"
        )


def well_formed(program: Program) -> List[str]:
    """All well-formedness issues of ``program`` (empty list = clean)."""
    issues: List[str] = []
    if program.main_name not in [f.name for f in program.functions()]:
        issues.append(f"missing entry function {program.main_name!r}")
        return issues
    for func in program.functions():
        issues.extend(_structural_issues(program, func))
    if issues:
        # Target-resolution errors would make the dataflow analysis
        # crash or lie; report them alone first.
        return issues
    issues.extend(_undefined_reads(program))
    return issues


def assert_well_formed(program: Program, name: str = "<program>") -> None:
    """Raise :class:`WellFormednessError` unless ``program`` is clean."""
    issues = well_formed(program)
    if issues:
        raise WellFormednessError(name, issues)


# --------------------------------------------------------------- structure


def _structural_issues(program: Program, func: Function) -> List[str]:
    issues: List[str] = []
    where = f"function {func.name!r}"
    if func.entry_label is None or not func.has_block(func.entry_label):
        issues.append(f"{where}: missing entry block")
        return issues
    if not func.block(func.entry_label).instructions:
        # The dynamic trace records instructions, not blocks: an empty
        # entry block is invisible to trace-based task construction,
        # so a CALL into this function cannot be matched to the task
        # rooted at its entry (found by fuzzing: TaskStreamError on a
        # reduced program whose callee entry was emptied).
        issues.append(f"{where}: entry block is empty")
    for blk in func.blocks():
        at = f"{where}, block {blk.label!r}"
        for idx, ins in enumerate(blk.instructions[:-1]):
            if ins.opcode.is_control:
                issues.append(
                    f"{at}: control instruction {ins.opcode.name} at "
                    f"non-terminator position {idx}"
                )
        term = blk.terminator
        if term is None and blk.fallthrough is None:
            issues.append(f"{at}: no terminator and no fallthrough")
        if term is not None and term.opcode.is_branch and blk.fallthrough is None:
            issues.append(f"{at}: conditional branch without fallthrough")
        if term is not None and term.opcode is Opcode.CALL:
            assert term.target is not None
            if not program.has_function(term.target):
                issues.append(f"{at}: CALL to unknown function {term.target!r}")
            if blk.fallthrough is None:
                issues.append(f"{at}: CALL without a continuation fallthrough")
        for succ in blk.successor_labels():
            if not func.has_block(succ):
                issues.append(f"{at}: targets unknown block {succ!r}")
    if not issues:
        unreachable = _unreachable_blocks(func)
        for label in unreachable:
            issues.append(f"{where}: block {label!r} unreachable from entry")
    return issues


def _unreachable_blocks(func: Function) -> List[str]:
    seen = {func.entry_label}
    stack = [func.entry_label]
    while stack:
        label = stack.pop()
        for succ in func.block(label).successor_labels():
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return [label for label in func.labels() if label not in seen]


# ----------------------------------------------------- must-defined reads


def _join(a: _State, b: _State) -> _State:
    if a is None:
        return b
    if b is None:
        return a
    return a & b


def _contains(state: _State, reg: str) -> bool:
    return state is None or reg in state


def _undefined_reads(program: Program) -> List[str]:
    """Reads of registers not must-defined on every path from entry.

    Registers form one global file shared across calls (the
    interpreter pushes only return continuations), so definedness
    flows *into* a callee at every call site (joined over sites) and
    *back* to the continuation from the callee's RET states.  The
    fixpoint is the standard optimistic chaotic iteration: states
    start at top (``None``) and only shrink.
    """
    entry_in: Dict[str, _State] = {f.name: None for f in program.functions()}
    ret_out: Dict[str, _State] = {f.name: None for f in program.functions()}
    entry_in[program.main_name] = frozenset({ZERO})

    changed = True
    while changed:
        changed = False
        for func in program.functions():
            state = entry_in[func.name]
            if state is None:
                continue
            calls, rets, _ = _flow_function(func, state, ret_out, collect=False)
            for callee, at_call in calls:
                joined = _join(entry_in[callee], at_call)
                if joined != entry_in[callee]:
                    entry_in[callee] = joined
                    changed = True
            if rets != ret_out[func.name]:
                ret_out[func.name] = rets
                changed = True

    issues: List[str] = []
    for func in program.functions():
        state = entry_in[func.name]
        if state is None:
            continue  # never called: structurally dead, not a read bug
        _, _, reads = _flow_function(func, state, ret_out, collect=True)
        issues.extend(reads)
    return issues


def _flow_function(
    func: Function,
    entry_state: FrozenSet[str],
    ret_out: Dict[str, _State],
    collect: bool,
) -> Tuple[List[Tuple[str, _State]], _State, List[str]]:
    """One intra-procedural must-defined pass.

    Returns ``(call_sites, ret_state, issues)`` where ``call_sites``
    is ``[(callee, defined_at_call), ...]``, ``ret_state`` is the join
    over all RET points (``None`` if the function cannot return), and
    ``issues`` is the undefined-read report (only when ``collect``).

    Definedness is monotone along an execution path — a write never
    un-defines anything — so the state after a CALL is the call-site
    state unioned with whatever the callee guarantees at its returns
    (``ret_out``), or top while the callee's returns are unanalysed.
    """
    block_in: Dict[str, _State] = {label: None for label in func.labels()}
    block_in[func.entry_label] = entry_state
    calls: List[Tuple[str, _State]] = []
    rets: _State = None
    issues: List[str] = []

    worklist = [func.entry_label]
    on_list = {func.entry_label}
    while worklist:
        label = worklist.pop(0)
        on_list.discard(label)
        state = block_in[label]
        if state is None:
            continue
        blk = func.block(label)
        defined: _State = state
        for idx, ins in enumerate(blk.instructions):
            if collect and defined is not None:
                for reg in ins.reads:
                    if reg not in defined:
                        issues.append(
                            f"function {func.name!r}, block {blk.label!r}, "
                            f"instruction {idx} ({ins.opcode.name}) reads "
                            f"{reg} which is not defined on every path "
                            f"from program entry"
                        )
            written = ins.writes
            if written is not None and defined is not None:
                defined = defined | {written}
            if ins.opcode is Opcode.CALL:
                assert ins.target is not None
                calls.append((ins.target, defined))
                after = ret_out.get(ins.target)
                defined = None if after is None or defined is None \
                    else defined | after
            elif ins.opcode is Opcode.RET:
                rets = _join(rets, defined)
        for succ in blk.successor_labels():
            joined = _join(block_in[succ], defined)
            if joined != block_in[succ]:
                block_in[succ] = joined
                if succ not in on_list:
                    worklist.append(succ)
                    on_list.add(succ)
    return calls, rets, issues


# ------------------------------------------------------------- partitions


def partition_issues(program: Program, partition) -> List[str]:
    """Single-entry violations of a task partition.

    A task is dynamically entered only at its root, so every
    intra-function CFG edge must either be *internal* to at least one
    task (execution stays inside that task's instance) or land on a
    block some task is rooted at (an inter-task transition).  Tasks
    may overlap — an edge into a block that is a non-root member of
    task T is fine as long as another task carries it internally or
    is rooted at the target.  An edge satisfying neither clause means
    execution could reach the middle of a task region from outside:
    exactly the multi-entry shape the predictors and commit pipeline
    cannot represent.  ``partition`` is a
    :class:`~repro.compiler.task.TaskPartition`; returns issue
    strings (empty = clean).
    """
    roots = set()
    internal = set()
    covered = {program.main_name}
    for task in partition.tasks():
        roots.add(task.root)
        internal.update(task.internal_edges)
        for target in task.targets:
            if target.block is not None and target.kind.value == "call":
                covered.add(target.block[0])

    issues: List[str] = []
    for func in program.functions():
        if func.name not in covered:
            # Only ever entered through absorbed calls (or dead code):
            # its blocks execute inside the absorbing tasks' instances,
            # so it legitimately has no tasks of its own.
            continue
        for blk in func.blocks():
            src: BlockId = (func.name, blk.label)
            for succ in blk.successor_labels():
                dst: BlockId = (func.name, succ)
                if dst in roots or (src, dst) in internal:
                    continue
                issues.append(
                    f"function {func.name!r}: edge "
                    f"{blk.label!r} -> {succ!r} is internal to no task "
                    f"and its target is not a task root (side entry "
                    f"into a task region)"
                )
    return issues
