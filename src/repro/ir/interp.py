"""Functional execution of IR programs, with dynamic trace capture.

The interpreter is the "functional" half of the classic functional /
timing simulator split: it executes a program exactly (register and
memory values, branch outcomes, effective addresses) and records a
:class:`Trace` — the linear dynamic instruction stream.  The timing
model (``repro.sim``) replays the trace under a task partition, so
timing bugs can never corrupt program semantics.

Semantics notes:

* Integer division/remainder truncate toward zero (C semantics);
  division by zero yields 0 (the workloads avoid it, but the guard
  keeps fuzzed programs executable).
* Memory is word addressed; uninitialised words read as 0.
* ``CALL`` pushes a return continuation (the call block's fallthrough);
  ``RET`` pops it.  Registers are a single global file, as on real
  hardware — calling conventions are the workloads' concern.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.block import BlockId
from repro.ir.instructions import Instruction, Opcode
from repro.ir.program import Program


class ExecutionLimitExceeded(RuntimeError):
    """Raised when a program exceeds the dynamic instruction budget."""


class DynInst:
    """One dynamic instruction in a trace.

    Attributes:
        index: position in the trace (0-based).
        block: the static block id ``(function, label)``.
        iidx: index of the static instruction within its block.
        op: the :class:`~repro.ir.instructions.Opcode`.
        pc: static instruction address.
        reads: register names read.
        write: register name written, or ``None``.
        addr: effective memory address for LOAD/STORE, else ``None``.
        taken: branch outcome for conditional branches, else ``None``.
        callee: callee function name for CALL, else ``None``.
    """

    __slots__ = (
        "index",
        "block",
        "iidx",
        "op",
        "pc",
        "reads",
        "write",
        "addr",
        "taken",
        "callee",
    )

    def __init__(
        self,
        index: int,
        block: BlockId,
        iidx: int,
        op: Opcode,
        pc: int,
        reads: Tuple[str, ...],
        write: Optional[str],
        addr: Optional[int],
        taken: Optional[bool],
        callee: Optional[str],
    ) -> None:
        self.index = index
        self.block = block
        self.iidx = iidx
        self.op = op
        self.pc = pc
        self.reads = reads
        self.write = write
        self.addr = addr
        self.taken = taken
        self.callee = callee

    def __repr__(self) -> str:
        return (
            f"DynInst(#{self.index} {self.op.value} @ {self.block[0]}:"
            f"{self.block[1]}[{self.iidx}])"
        )


class Trace:
    """The dynamic instruction stream of one program execution."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.insts: List[DynInst] = []
        #: dynamic block entry events as (trace index of first inst, block id)
        self.block_entries: List[Tuple[int, BlockId]] = []

    def __len__(self) -> int:
        return len(self.insts)

    def __iter__(self):
        return iter(self.insts)

    def __getitem__(self, index: int) -> DynInst:
        return self.insts[index]

    @property
    def dynamic_instruction_count(self) -> int:
        """Total dynamic instructions executed."""
        return len(self.insts)

    def control_transfer_count(self) -> int:
        """Number of dynamic control transfer instructions."""
        return sum(1 for d in self.insts if d.op.is_control)


class Interpreter:
    """Executes a :class:`~repro.ir.program.Program` and records a trace."""

    def __init__(self, program: Program, max_instructions: int = 2_000_000) -> None:
        program.validate()
        self.program = program
        self.max_instructions = max_instructions
        self.int_regs: Dict[str, int] = {"r0": 0}
        self.fp_regs: Dict[str, float] = {}
        self.memory: Dict[int, float] = dict(program.memory_image)
        self.halted = False

    # ------------------------------------------------------------ registers

    def read_reg(self, name: str) -> float:
        """Current value of register ``name`` (0 if never written)."""
        if name[0] == "f":
            return self.fp_regs.get(name, 0.0)
        if name == "r0":
            return 0
        return self.int_regs.get(name, 0)

    def write_reg(self, name: str, value: float) -> None:
        """Set register ``name``; writes to ``r0`` are discarded."""
        if name == "r0":
            return
        if name[0] == "f":
            self.fp_regs[name] = float(value)
        else:
            self.int_regs[name] = int(value)

    # -------------------------------------------------------------- running

    def run(self) -> Trace:
        """Execute from ``main`` until HALT; return the trace.

        Register file access is inlined (int/fp dict gets keyed by the
        ``f`` name prefix, matching :meth:`read_reg` / :meth:`write_reg`)
        — this loop executes millions of dynamic instructions per trace
        and the helper-call overhead used to dominate it.
        """
        trace = Trace(self.program)
        program = self.program
        func_name = program.main_name
        label = program.function(func_name).entry_label
        assert label is not None
        call_stack: List[Tuple[str, str]] = []
        insts = trace.insts
        append_inst = insts.append
        limit = self.max_instructions
        int_regs = self.int_regs
        fp_regs = self.fp_regs
        memory = self.memory
        n_insts = 0
        _LOAD = Opcode.LOAD
        _STORE = Opcode.STORE
        _BEQZ = Opcode.BEQZ
        _BNEZ = Opcode.BNEZ
        _JUMP = Opcode.JUMP
        _CALL = Opcode.CALL
        _RET = Opcode.RET
        _HALT = Opcode.HALT
        _LI = Opcode.LI
        _FLI = Opcode.FLI
        _CVTFI = Opcode.CVTFI
        _MOVES = (Opcode.MOV, Opcode.FMOV, Opcode.CVTIF, Opcode.CVTFI)

        while not self.halted:
            func = program.function(func_name)
            blk = func.block(label)
            trace.block_entries.append((n_insts, (func_name, label)))
            next_func = func_name
            next_label: Optional[str] = blk.fallthrough
            block_id = (func_name, label)
            # PCs are assigned sequentially within a block, so one
            # lookup per block entry replaces one per instruction.
            block_pc = (
                program.pc_of(func_name, label, 0) if blk.instructions else 0
            )
            for iidx, ins in enumerate(blk.instructions):
                if n_insts >= limit:
                    raise ExecutionLimitExceeded(
                        f"exceeded {limit} dynamic instructions"
                    )
                op = ins.opcode
                addr: Optional[int] = None
                taken: Optional[bool] = None
                callee: Optional[str] = None

                if op is _LOAD:
                    name = ins.srcs[0]
                    base = (
                        fp_regs.get(name, 0.0)
                        if name[0] == "f"
                        else int_regs.get(name, 0)
                    )
                    addr = int(base) + int(ins.imm or 0)
                    dst = ins.dst
                    if dst != "r0":
                        val = memory.get(addr, 0)
                        if dst[0] == "f":
                            fp_regs[dst] = float(val)
                        else:
                            int_regs[dst] = int(val)
                elif op is _STORE:
                    name = ins.srcs[0]
                    value = (
                        fp_regs.get(name, 0.0)
                        if name[0] == "f"
                        else int_regs.get(name, 0)
                    )
                    name = ins.srcs[1]
                    base = (
                        fp_regs.get(name, 0.0)
                        if name[0] == "f"
                        else int_regs.get(name, 0)
                    )
                    addr = int(base) + int(ins.imm or 0)
                    memory[addr] = value
                elif op is _BEQZ or op is _BNEZ:
                    name = ins.srcs[0]
                    value = (
                        fp_regs.get(name, 0.0)
                        if name[0] == "f"
                        else int_regs.get(name, 0)
                    )
                    taken = (value == 0) if op is _BEQZ else (value != 0)
                    if taken:
                        next_label = ins.target
                elif op is _JUMP:
                    next_label = ins.target
                elif op is _CALL:
                    assert ins.target is not None
                    callee = ins.target
                    assert blk.fallthrough is not None, (
                        f"call in {blk.label} lacks a continuation"
                    )
                    call_stack.append((func_name, blk.fallthrough))
                    next_func = callee
                    next_label = program.function(callee).entry_label
                elif op is _RET:
                    if not call_stack:
                        raise RuntimeError(
                            f"RET with empty call stack in {func_name}:{label}"
                        )
                    next_func, next_label = call_stack.pop()
                elif op is _HALT:
                    self.halted = True
                    next_label = None
                else:
                    # ALU / move family, inlined from _execute_alu.
                    srcs = ins.srcs
                    if op is _LI or op is _FLI:
                        val = ins.imm
                    elif op in _MOVES:  # MOV / FMOV / CVTIF / CVTFI
                        name = srcs[0]
                        val = (
                            fp_regs.get(name, 0.0)
                            if name[0] == "f"
                            else int_regs.get(name, 0)
                        )
                        if op is _CVTFI:
                            val = int(val)
                    else:
                        name = srcs[0]
                        a = (
                            fp_regs.get(name, 0.0)
                            if name[0] == "f"
                            else int_regs.get(name, 0)
                        )
                        if len(srcs) > 1:
                            name = srcs[1]
                            b = (
                                fp_regs.get(name, 0.0)
                                if name[0] == "f"
                                else int_regs.get(name, 0)
                            )
                        else:
                            b = ins.imm
                        val = op.alu(a, b)
                    dst = ins.dst
                    if dst != "r0":
                        if dst[0] == "f":
                            fp_regs[dst] = float(val)
                        else:
                            int_regs[dst] = int(val)

                append_inst(
                    DynInst(
                        n_insts,
                        block_id,
                        iidx,
                        op,
                        block_pc + iidx,
                        ins.reads,
                        ins.writes,
                        addr,
                        taken,
                        callee,
                    )
                )
                n_insts += 1
            if self.halted:
                break
            if next_label is None:
                raise RuntimeError(
                    f"fell off the end of block {func_name}:{label}"
                )
            func_name, label = next_func, next_label
        return trace

    def _execute_alu(self, ins: Instruction) -> None:
        op = ins.opcode
        if op is Opcode.LI or op is Opcode.FLI:
            assert ins.dst is not None and ins.imm is not None
            self.write_reg(ins.dst, ins.imm)
            return
        if op in (Opcode.MOV, Opcode.FMOV, Opcode.CVTIF):
            assert ins.dst is not None
            self.write_reg(ins.dst, self.read_reg(ins.srcs[0]))
            return
        if op is Opcode.CVTFI:
            assert ins.dst is not None
            self.write_reg(ins.dst, int(self.read_reg(ins.srcs[0])))
            return
        a = self.read_reg(ins.srcs[0])
        b = self.read_reg(ins.srcs[1]) if len(ins.srcs) > 1 else ins.imm
        assert b is not None, f"missing second operand for {ins}"
        assert ins.dst is not None
        self.write_reg(ins.dst, op.alu(a, b))


def _int_div(a: float, b: float) -> int:
    if b == 0:
        return 0
    q = abs(int(a)) // abs(int(b))
    return q if (a >= 0) == (b >= 0) else -q


def _int_rem(a: float, b: float) -> int:
    if b == 0:
        return 0
    return int(a) - _int_div(a, b) * int(b)


_ALU_FUNCS = {
    Opcode.ADD: lambda a, b: int(a) + int(b),
    Opcode.SUB: lambda a, b: int(a) - int(b),
    Opcode.MUL: lambda a, b: int(a) * int(b),
    Opcode.DIV: _int_div,
    Opcode.REM: _int_rem,
    Opcode.AND: lambda a, b: int(a) & int(b),
    Opcode.OR: lambda a, b: int(a) | int(b),
    Opcode.XOR: lambda a, b: int(a) ^ int(b),
    Opcode.SHL: lambda a, b: int(a) << int(b),
    Opcode.SHR: lambda a, b: int(a) >> int(b),
    Opcode.SLT: lambda a, b: 1 if a < b else 0,
    Opcode.SLE: lambda a, b: 1 if a <= b else 0,
    Opcode.SEQ: lambda a, b: 1 if a == b else 0,
    Opcode.SNE: lambda a, b: 1 if a != b else 0,
    Opcode.FADD: lambda a, b: float(a) + float(b),
    Opcode.FSUB: lambda a, b: float(a) - float(b),
    Opcode.FMUL: lambda a, b: float(a) * float(b),
    Opcode.FDIV: lambda a, b: float(a) / b if b != 0 else 0.0,
}

# Bind each ALU function directly onto its opcode: ``op.alu(a, b)`` is
# an attribute load, where ``_ALU_FUNCS[op]`` pays an enum hash per
# dynamic ALU instruction.
for _op, _fn in _ALU_FUNCS.items():
    _op.alu = _fn


def run_program(program: Program, max_instructions: int = 2_000_000) -> Trace:
    """Convenience: interpret ``program`` and return its trace."""
    return Interpreter(program, max_instructions=max_instructions).run()
