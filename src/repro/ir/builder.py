"""Fluent construction of IR programs.

``IRBuilder`` keeps a current function and a current block and offers
one method per opcode plus structural helpers.  The synthetic SPEC95
workloads (``repro.workloads``) are written against this API, e.g.::

    b = IRBuilder()
    with b.function("main"):
        b.li("r1", 0)
        body = b.new_label("body")
        done = b.new_label("done")
        b.jump(body)
        with b.block(body):
            b.addi("r1", "r1", 1)
            b.slt("r9", "r1", "r2")
            b.bnez("r9", body, fallthrough=done)
        with b.block(done):
            b.halt()

Blocks left without a terminator automatically fall through to the next
block opened on the same function, unless an explicit fallthrough is
set with :meth:`IRBuilder.set_fallthrough`.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Opcode
from repro.ir.program import Program


class IRBuilder:
    """Incrementally builds a :class:`~repro.ir.program.Program`."""

    def __init__(self, main: str = "main") -> None:
        self.program = Program(main=main)
        self._func: Optional[Function] = None
        self._block: Optional[BasicBlock] = None
        self._pending_fallthrough: Optional[BasicBlock] = None
        self._label_counter = 0

    # ---------------------------------------------------------------- scope

    @contextlib.contextmanager
    def function(self, name: str) -> Iterator[Function]:
        """Open a function scope; an ``entry`` block is created."""
        func = Function(name)
        self.program.add_function(func)
        prev_func, prev_block = self._func, self._block
        self._func = func
        self._block = None
        self._pending_fallthrough = None
        self.open_block("entry")
        try:
            yield func
        finally:
            self._finish_pending()
            self._func, self._block = prev_func, prev_block

    @contextlib.contextmanager
    def block(self, label: str) -> Iterator[BasicBlock]:
        """Open (and make current) a new block named ``label``."""
        blk = self.open_block(label)
        yield blk

    def open_block(self, label: str) -> BasicBlock:
        """Start a new current block; resolve any pending fallthrough."""
        func = self._require_function()
        blk = BasicBlock(label=label, instructions=[])
        func.add_block(blk)
        if self._pending_fallthrough is not None:
            if self._pending_fallthrough.fallthrough is None:
                self._pending_fallthrough.fallthrough = label
            self._pending_fallthrough = None
        elif self._block is not None and self._block.terminator is None:
            # The previous block ended without control flow: it falls
            # through to the block being opened.
            if self._block.fallthrough is None:
                self._block.fallthrough = label
        self._block = blk
        return blk

    def new_label(self, stem: str) -> str:
        """Return a fresh program-unique block label from ``stem``."""
        self._label_counter += 1
        return f"{stem}_{self._label_counter}"

    def set_fallthrough(self, label: str) -> None:
        """Explicitly set the current block's fallthrough label."""
        self._require_block().fallthrough = label
        if self._pending_fallthrough is self._block:
            self._pending_fallthrough = None

    def current_label(self) -> str:
        """Label of the current block."""
        return self._require_block().label

    def _require_function(self) -> Function:
        if self._func is None:
            raise ValueError("no function scope is open")
        return self._func

    def _require_block(self) -> BasicBlock:
        if self._block is None:
            raise ValueError("no block is open")
        return self._block

    def _finish_pending(self) -> None:
        if self._pending_fallthrough is not None:
            raise ValueError(
                f"block {self._pending_fallthrough.label!r} falls off "
                "the end of its function"
            )

    # ----------------------------------------------------------------- emit

    def emit(self, instruction: Instruction) -> Instruction:
        """Append ``instruction`` to the current block."""
        blk = self._require_block()
        if blk.terminator is not None:
            raise ValueError(
                f"block {blk.label!r} already terminated by {blk.terminator}"
            )
        blk.instructions.append(instruction)
        if instruction.opcode.is_control:
            term = instruction.opcode
            if term in (Opcode.BEQZ, Opcode.BNEZ, Opcode.CALL):
                # These need a fallthrough: fill from the next block
                # opened unless already set.
                if blk.fallthrough is None:
                    self._pending_fallthrough = blk
            self._block = None
        return instruction

    def _alu(self, opcode: Opcode, dst: str, *srcs: str) -> Instruction:
        return self.emit(Instruction(opcode, dst=dst, srcs=tuple(srcs)))

    def _alui(self, opcode: Opcode, dst: str, src: str, imm: float) -> Instruction:
        return self.emit(Instruction(opcode, dst=dst, srcs=(src,), imm=imm))

    # Integer ALU -----------------------------------------------------------

    def add(self, dst: str, a: str, b: str) -> Instruction:
        """``dst = a + b``."""
        return self._alu(Opcode.ADD, dst, a, b)

    def addi(self, dst: str, a: str, imm: int) -> Instruction:
        """``dst = a + imm``."""
        return self._alui(Opcode.ADD, dst, a, imm)

    def sub(self, dst: str, a: str, b: str) -> Instruction:
        """``dst = a - b``."""
        return self._alu(Opcode.SUB, dst, a, b)

    def subi(self, dst: str, a: str, imm: int) -> Instruction:
        """``dst = a - imm``."""
        return self._alui(Opcode.SUB, dst, a, imm)

    def mul(self, dst: str, a: str, b: str) -> Instruction:
        """``dst = a * b``."""
        return self._alu(Opcode.MUL, dst, a, b)

    def muli(self, dst: str, a: str, imm: int) -> Instruction:
        """``dst = a * imm``."""
        return self._alui(Opcode.MUL, dst, a, imm)

    def div(self, dst: str, a: str, b: str) -> Instruction:
        """``dst = a // b`` (toward zero)."""
        return self._alu(Opcode.DIV, dst, a, b)

    def rem(self, dst: str, a: str, b: str) -> Instruction:
        """``dst = a mod b`` (sign of dividend)."""
        return self._alu(Opcode.REM, dst, a, b)

    def remi(self, dst: str, a: str, imm: int) -> Instruction:
        """``dst = a mod imm``."""
        return self._alui(Opcode.REM, dst, a, imm)

    def and_(self, dst: str, a: str, b: str) -> Instruction:
        """``dst = a & b``."""
        return self._alu(Opcode.AND, dst, a, b)

    def andi(self, dst: str, a: str, imm: int) -> Instruction:
        """``dst = a & imm``."""
        return self._alui(Opcode.AND, dst, a, imm)

    def or_(self, dst: str, a: str, b: str) -> Instruction:
        """``dst = a | b``."""
        return self._alu(Opcode.OR, dst, a, b)

    def xor(self, dst: str, a: str, b: str) -> Instruction:
        """``dst = a ^ b``."""
        return self._alu(Opcode.XOR, dst, a, b)

    def xori(self, dst: str, a: str, imm: int) -> Instruction:
        """``dst = a ^ imm``."""
        return self._alui(Opcode.XOR, dst, a, imm)

    def shl(self, dst: str, a: str, imm: int) -> Instruction:
        """``dst = a << imm``."""
        return self._alui(Opcode.SHL, dst, a, imm)

    def shr(self, dst: str, a: str, imm: int) -> Instruction:
        """``dst = a >> imm``."""
        return self._alui(Opcode.SHR, dst, a, imm)

    def slt(self, dst: str, a: str, b: str) -> Instruction:
        """``dst = 1 if a < b else 0``."""
        return self._alu(Opcode.SLT, dst, a, b)

    def slti(self, dst: str, a: str, imm: int) -> Instruction:
        """``dst = 1 if a < imm else 0``."""
        return self._alui(Opcode.SLT, dst, a, imm)

    def sle(self, dst: str, a: str, b: str) -> Instruction:
        """``dst = 1 if a <= b else 0``."""
        return self._alu(Opcode.SLE, dst, a, b)

    def seq(self, dst: str, a: str, b: str) -> Instruction:
        """``dst = 1 if a == b else 0``."""
        return self._alu(Opcode.SEQ, dst, a, b)

    def seqi(self, dst: str, a: str, imm: int) -> Instruction:
        """``dst = 1 if a == imm else 0``."""
        return self._alui(Opcode.SEQ, dst, a, imm)

    def sne(self, dst: str, a: str, b: str) -> Instruction:
        """``dst = 1 if a != b else 0``."""
        return self._alu(Opcode.SNE, dst, a, b)

    def li(self, dst: str, imm: int) -> Instruction:
        """``dst = imm``."""
        return self.emit(Instruction(Opcode.LI, dst=dst, imm=imm))

    def mov(self, dst: str, src: str) -> Instruction:
        """``dst = src`` (integer)."""
        return self._alu(Opcode.MOV, dst, src)

    # Floating point --------------------------------------------------------

    def fadd(self, dst: str, a: str, b: str) -> Instruction:
        """``dst = a + b`` (fp)."""
        return self._alu(Opcode.FADD, dst, a, b)

    def fsub(self, dst: str, a: str, b: str) -> Instruction:
        """``dst = a - b`` (fp)."""
        return self._alu(Opcode.FSUB, dst, a, b)

    def fmul(self, dst: str, a: str, b: str) -> Instruction:
        """``dst = a * b`` (fp)."""
        return self._alu(Opcode.FMUL, dst, a, b)

    def fdiv(self, dst: str, a: str, b: str) -> Instruction:
        """``dst = a / b`` (fp)."""
        return self._alu(Opcode.FDIV, dst, a, b)

    def fmov(self, dst: str, src: str) -> Instruction:
        """``dst = src`` (fp)."""
        return self._alu(Opcode.FMOV, dst, src)

    def fli(self, dst: str, imm: float) -> Instruction:
        """``dst = imm`` (fp immediate)."""
        return self.emit(Instruction(Opcode.FLI, dst=dst, imm=imm))

    def cvtif(self, dst: str, src: str) -> Instruction:
        """``dst(fp) = float(src(int))``."""
        return self._alu(Opcode.CVTIF, dst, src)

    def cvtfi(self, dst: str, src: str) -> Instruction:
        """``dst(int) = int(src(fp))`` (truncating)."""
        return self._alu(Opcode.CVTFI, dst, src)

    # Memory ----------------------------------------------------------------

    def load(self, dst: str, base: str, offset: int = 0) -> Instruction:
        """``dst = mem[base + offset]``."""
        return self.emit(
            Instruction(Opcode.LOAD, dst=dst, srcs=(base,), imm=offset)
        )

    def store(self, value: str, base: str, offset: int = 0) -> Instruction:
        """``mem[base + offset] = value``."""
        return self.emit(
            Instruction(Opcode.STORE, srcs=(value, base), imm=offset)
        )

    # Control ---------------------------------------------------------------

    def beqz(
        self, cond: str, target: str, fallthrough: Optional[str] = None
    ) -> Instruction:
        """Branch to ``target`` if ``cond == 0``."""
        if fallthrough is not None:
            self._require_block().fallthrough = fallthrough
        return self.emit(Instruction(Opcode.BEQZ, srcs=(cond,), target=target))

    def bnez(
        self, cond: str, target: str, fallthrough: Optional[str] = None
    ) -> Instruction:
        """Branch to ``target`` if ``cond != 0``."""
        if fallthrough is not None:
            self._require_block().fallthrough = fallthrough
        return self.emit(Instruction(Opcode.BNEZ, srcs=(cond,), target=target))

    def jump(self, target: str) -> Instruction:
        """Unconditional jump to block ``target``."""
        return self.emit(Instruction(Opcode.JUMP, target=target))

    def call(self, func_name: str, fallthrough: Optional[str] = None) -> Instruction:
        """Call ``func_name``; execution continues at ``fallthrough``."""
        if fallthrough is not None:
            self._require_block().fallthrough = fallthrough
        return self.emit(Instruction(Opcode.CALL, target=func_name))

    def ret(self) -> Instruction:
        """Return from the current function."""
        return self.emit(Instruction(Opcode.RET))

    def halt(self) -> Instruction:
        """Stop the program."""
        return self.emit(Instruction(Opcode.HALT))

    # ---------------------------------------------------------------- final

    def build(self, validate: bool = True) -> Program:
        """Finish and return the program (validated by default)."""
        self._finish_pending()
        if validate:
            self.program.validate()
        return self.program
