"""Functions of the reproduction IR.

A function is an ordered collection of basic blocks with a designated
entry block.  Block order is the layout order (used for pretty
printing and for deterministic iteration); control flow is defined by
the blocks' terminators and fallthrough labels, not by layout.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.ir.block import BasicBlock
from repro.ir.instructions import Opcode


class Function:
    """An IR function: named, with an entry block and a block map."""

    def __init__(self, name: str, entry_label: Optional[str] = None) -> None:
        self.name = name
        self._blocks: Dict[str, BasicBlock] = {}
        self._order: List[str] = []
        self.entry_label: Optional[str] = entry_label

    def add_block(self, block: BasicBlock) -> BasicBlock:
        """Add ``block``; the first block added becomes the entry."""
        if block.label in self._blocks:
            raise ValueError(
                f"function {self.name!r}: duplicate block label {block.label!r}"
            )
        self._blocks[block.label] = block
        self._order.append(block.label)
        if self.entry_label is None:
            self.entry_label = block.label
        return block

    def remove_block(self, label: str) -> None:
        """Remove the block named ``label`` (must not be the entry)."""
        if label == self.entry_label:
            raise ValueError(f"cannot remove entry block {label!r}")
        del self._blocks[label]
        self._order.remove(label)

    def block(self, label: str) -> BasicBlock:
        """Return the block named ``label``; ``KeyError`` if absent."""
        return self._blocks[label]

    def has_block(self, label: str) -> bool:
        """True if a block named ``label`` exists."""
        return label in self._blocks

    @property
    def entry(self) -> BasicBlock:
        """The entry block."""
        if self.entry_label is None:
            raise ValueError(f"function {self.name!r} has no blocks")
        return self._blocks[self.entry_label]

    def blocks(self) -> Iterator[BasicBlock]:
        """Iterate blocks in layout order."""
        for label in self._order:
            yield self._blocks[label]

    def labels(self) -> List[str]:
        """Block labels in layout order."""
        return list(self._order)

    @property
    def size(self) -> int:
        """Total static instruction count."""
        return sum(b.size for b in self.blocks())

    def callees(self) -> List[str]:
        """Names of functions this function calls (with repeats)."""
        out = []
        for blk in self.blocks():
            term = blk.terminator
            if term is not None and term.opcode is Opcode.CALL:
                assert term.target is not None
                out.append(term.target)
        return out

    def fresh_label(self, stem: str) -> str:
        """Return a block label derived from ``stem`` not yet in use."""
        if stem not in self._blocks:
            return stem
        i = 1
        while f"{stem}.{i}" in self._blocks:
            i += 1
        return f"{stem}.{i}"

    def validate(self) -> None:
        """Check function-level invariants; raise ``ValueError``.

        * entry exists;
        * every block is individually valid;
        * every successor label resolves to a block in this function.
        """
        if self.entry_label is None or self.entry_label not in self._blocks:
            raise ValueError(f"function {self.name!r}: missing entry block")
        for blk in self.blocks():
            blk.validate()
            for succ in blk.successor_labels():
                if succ not in self._blocks:
                    raise ValueError(
                        f"function {self.name!r}: block {blk.label!r} "
                        f"targets unknown block {succ!r}"
                    )

    def __str__(self) -> str:
        header = f"func {self.name} (entry {self.entry_label}):"
        return "\n".join([header] + [str(b) for b in self.blocks()])
