"""Tracked perf baseline: time simulation grids cold, on the wall clock.

``repro bench`` runs one of the named grids with **no** caching — the
in-memory compile cache is cleared and the persistent artifact cache
is bypassed — so the measurement reflects the full compile + simulate
pipeline, exactly what a cold ``repro figure5 --jobs 1 --no-cache``
pays.  Each measurement records wall seconds, cell count, total
simulated cycles and simulated cycles per wall second, plus the git
commit and the engine, into a machine-readable dict that serialises
to ``BENCH_sim.json``.

The committed ``BENCH_sim.json`` at the repo root is the baseline the
CI perf-smoke job compares against: ``check_regression`` fails a run
whose wall time exceeds the baseline by more than the tolerance
(default 25%), so an accidental slowdown of the simulation core is
caught at review time rather than discovered months later.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

SCHEMA_VERSION = 1

#: regression tolerance: fail when wall time exceeds baseline by more
DEFAULT_TOLERANCE = 0.25


@dataclass(frozen=True)
class GridSpec:
    """One named timing grid (a subset of the Figure 5 sweep)."""

    name: str
    benchmarks: Tuple[str, ...]  # empty = all registered benchmarks
    configs: Tuple[Tuple[int, bool], ...]
    scale: float
    description: str


#: the grids ``repro bench`` knows how to time.  ``figure5`` is the
#: headline number (the full paper grid); ``smoke`` is sized for CI;
#: ``micro`` is sized for the test suite.
GRIDS: Dict[str, GridSpec] = {
    spec.name: spec
    for spec in (
        GridSpec(
            name="figure5",
            benchmarks=(),
            configs=((4, True), (8, True), (4, False), (8, False)),
            scale=1.0,
            description="full Figure 5 grid (18 benchmarks x 4 levels "
                        "x 4 machine configs)",
        ),
        GridSpec(
            name="smoke",
            benchmarks=("compress", "m88ksim", "tomcatv", "swim"),
            configs=((4, True), (8, True), (4, False), (8, False)),
            scale=0.2,
            description="CI-sized subset (4 benchmarks, scale 0.2)",
        ),
        GridSpec(
            name="micro",
            benchmarks=("compress",),
            configs=((4, True),),
            scale=0.1,
            description="single-benchmark sanity grid (test-suite sized)",
        ),
    )
}


def git_commit() -> str:
    """Short hash of HEAD, or "unknown" outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def run_grid(grid: str, engine: str = "fast", jobs: int = 1) -> dict:
    """Time one named grid cold; returns its measurement record.

    Cold means cold: the in-memory compile cache is cleared first and
    the persistent artifact cache is not consulted, so repeat
    invocations measure the same work.
    """
    from repro.experiments import runner
    from repro.experiments.figure5 import run_figure5

    spec = GRIDS[grid]
    runner.clear_cache()
    start = time.perf_counter()
    result = run_figure5(
        benchmarks=spec.benchmarks, configs=spec.configs,
        scale=spec.scale, jobs=jobs, cache=None, ledger=None,
        engine=engine,
    )
    wall_s = time.perf_counter() - start
    sim_cycles = sum(rec.cycles for rec in result.records.values())
    return {
        "grid": grid,
        "engine": engine,
        "wall_s": round(wall_s, 3),
        "cells": len(result.records),
        "sim_cycles": sim_cycles,
        "cycles_per_s": round(sim_cycles / wall_s, 1) if wall_s else 0.0,
        "scale": spec.scale,
        "jobs": jobs,
    }


def run_bench(
    grids: Sequence[str] = ("smoke",),
    engines: Sequence[str] = ("fast",),
    jobs: int = 1,
) -> dict:
    """Time every (grid, engine) pair; returns the full bench record."""
    measurements: Dict[str, dict] = {}
    for grid in grids:
        for engine in engines:
            measurements[f"{grid}@{engine}"] = run_grid(
                grid, engine=engine, jobs=jobs
            )
    record = {
        "schema": SCHEMA_VERSION,
        "commit": git_commit(),
        "python": platform.python_version(),
        "grids": measurements,
    }
    _annotate_speedups(record)
    return record


def _annotate_speedups(record: dict) -> None:
    """Cross-engine wall-time ratios per grid, where both sides ran.

    ``speedup[<grid>]`` keeps the historical fast-vs-reference ratio;
    ``speedup[<grid>:batched]`` is batched-vs-fast (> 1 means the
    cohort path beat cell-by-cell fast on this grid).
    """
    grids = record["grids"]
    speedups: Dict[str, float] = {}
    for entry in grids.values():
        if not entry["wall_s"]:
            continue
        if entry["engine"] == "fast":
            ref = grids.get(f"{entry['grid']}@reference")
            if ref:
                speedups[entry["grid"]] = round(
                    ref["wall_s"] / entry["wall_s"], 2
                )
        elif entry["engine"] == "batched":
            fast = grids.get(f"{entry['grid']}@fast")
            if fast:
                speedups[f"{entry['grid']}:batched"] = round(
                    fast["wall_s"] / entry["wall_s"], 2
                )
    if speedups:
        record["speedup"] = speedups


def load_baseline(path: str) -> Optional[dict]:
    """The committed baseline record, or None if absent/unreadable."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def write_record(path: str, record: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")


def merge_into_baseline(path: str, record: dict) -> dict:
    """Fold ``record``'s measurements into the baseline file at ``path``.

    Existing measurements for other (grid, engine) pairs are kept;
    measured pairs are replaced.  The merged record is written back
    and returned.
    """
    baseline = load_baseline(path) or {
        "schema": SCHEMA_VERSION, "grids": {}
    }
    baseline["schema"] = SCHEMA_VERSION
    baseline["commit"] = record["commit"]
    baseline["python"] = record["python"]
    baseline.setdefault("grids", {}).update(record["grids"])
    _annotate_speedups(baseline)
    write_record(path, baseline)
    return baseline


def check_regression(
    record: dict,
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Wall-time regressions of ``record`` against ``baseline``.

    Returns one message per (grid, engine) pair measured in both whose
    current wall time exceeds baseline * (1 + tolerance); an empty
    list means no regression.  Pairs present in only one record are
    ignored — a new grid has nothing to regress against.  Simulated
    cycle counts are also cross-checked: the engines are deterministic,
    so a cycle-count mismatch on the same commit history means the
    simulation changed behaviour, which a wall-clock gate must flag
    rather than silently re-baseline.
    """
    problems: List[str] = []
    base_grids = baseline.get("grids", {})
    for key, entry in record.get("grids", {}).items():
        base = base_grids.get(key)
        if base is None:
            continue
        limit = base["wall_s"] * (1.0 + tolerance)
        if entry["wall_s"] > limit:
            problems.append(
                f"{key}: wall time {entry['wall_s']:.2f}s exceeds "
                f"baseline {base['wall_s']:.2f}s by more than "
                f"{tolerance:.0%} (limit {limit:.2f}s)"
            )
        if base.get("sim_cycles") and entry["sim_cycles"] != base["sim_cycles"]:
            problems.append(
                f"{key}: simulated {entry['sim_cycles']} cycles, "
                f"baseline recorded {base['sim_cycles']} — the "
                f"simulation's behaviour changed, re-baseline "
                f"deliberately if intended"
            )
    return problems


def format_record(record: dict) -> str:
    """Human-readable rendering of one bench record."""
    lines = [
        f"commit {record.get('commit', '?')}  "
        f"python {record.get('python', '?')}"
    ]
    for key in sorted(record.get("grids", {})):
        entry = record["grids"][key]
        lines.append(
            f"{key:<22} {entry['wall_s']:>9.2f}s  "
            f"{entry['cells']:>4} cells  "
            f"{entry['sim_cycles']:>12,} cycles  "
            f"{entry['cycles_per_s']:>12,.0f} cyc/s"
        )
    for grid, ratio in sorted(record.get("speedup", {}).items()):
        if grid.endswith(":batched"):
            lines.append(
                f"speedup {grid.split(':')[0]}: {ratio:.2f}x "
                f"batched vs fast"
            )
        else:
            lines.append(
                f"speedup {grid}: {ratio:.2f}x fast vs reference"
            )
    return "\n".join(lines)
