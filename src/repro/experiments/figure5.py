"""Figure 5: impact of the compiler heuristics on SPEC95 IPC.

The paper's figure shows, per benchmark, IPC bars for basic block /
control flow / data dependence / task size tasks, for out-of-order and
in-order PUs, at 4 ("a") and 8 ("b") PUs.  :func:`run_figure5`
regenerates the full grid; :func:`format_figure5` prints it with the
paper's headline statistic — percentage improvement over basic block
tasks, summarised per suite.

Expected shape (Section 4.3.1): every heuristic level beats basic
block tasks; fp gains exceed integer gains; 8 PUs gain more than 4;
in-order PUs gain relatively more from the heuristics than
out-of-order PUs; the data dependence heuristic adds a modest delta
over control flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler import HeuristicLevel
from repro.experiments.runner import RunRecord
from repro.harness.cache import ArtifactCache
from repro.harness.ledger import RunLedger
from repro.harness.scheduler import run_specs
from repro.harness.spec import RunSpec
from repro.metrics import geometric_mean, improvement_percent
from repro.workloads import all_benchmarks

LEVELS: Tuple[HeuristicLevel, ...] = (
    HeuristicLevel.BASIC_BLOCK,
    HeuristicLevel.CONTROL_FLOW,
    HeuristicLevel.DATA_DEPENDENCE,
    HeuristicLevel.TASK_SIZE,
)

ConfigKey = Tuple[int, bool]
"""(n_pus, out_of_order)."""

DEFAULT_CONFIGS: Tuple[ConfigKey, ...] = (
    (4, True),
    (8, True),
    (4, False),
    (8, False),
)


@dataclass
class Figure5Result:
    """All runs of the Figure 5 grid, indexed for reporting."""

    records: Dict[Tuple[str, HeuristicLevel, ConfigKey], RunRecord] = field(
        default_factory=dict
    )

    def ipc(self, benchmark: str, level: HeuristicLevel, config: ConfigKey) -> float:
        """IPC of one cell."""
        return self.records[(benchmark, level, config)].ipc

    def improvement(
        self, benchmark: str, level: HeuristicLevel, config: ConfigKey
    ) -> float:
        """Percent IPC improvement over basic block tasks."""
        base = self.ipc(benchmark, HeuristicLevel.BASIC_BLOCK, config)
        return improvement_percent(self.ipc(benchmark, level, config), base)

    def suite_improvement_range(
        self, suite: str, level: HeuristicLevel, config: ConfigKey
    ) -> Tuple[float, float]:
        """(min, max) improvement over basic block across a suite."""
        gains = [
            self.improvement(bm.name, level, config)
            for bm in all_benchmarks()
            if bm.suite == suite
            and (bm.name, level, config) in self.records
            and (bm.name, HeuristicLevel.BASIC_BLOCK, config) in self.records
        ]
        if not gains:
            raise KeyError(f"no {suite} benchmarks in this grid")
        return min(gains), max(gains)

    def suite_geomean_ratio(
        self, suite: str, level: HeuristicLevel, config: ConfigKey
    ) -> float:
        """Geometric-mean IPC ratio over basic block across a suite."""
        ratios = [
            self.ipc(bm.name, level, config)
            / self.ipc(bm.name, HeuristicLevel.BASIC_BLOCK, config)
            for bm in all_benchmarks()
            if bm.suite == suite
            and (bm.name, level, config) in self.records
            and (bm.name, HeuristicLevel.BASIC_BLOCK, config) in self.records
        ]
        return geometric_mean(ratios)


def figure5_specs(
    benchmarks: Sequence[str] = (),
    configs: Sequence[ConfigKey] = DEFAULT_CONFIGS,
    levels: Sequence[HeuristicLevel] = LEVELS,
    scale: float = 1.0,
    engine: str = "fast",
) -> Tuple[List[Tuple[str, HeuristicLevel, ConfigKey]], List[RunSpec]]:
    """The grid's (keys, specs), in the canonical submission order.

    This is the serialization boundary the campaign service shards
    jobs on: the specs here *are* the grid, so any dispatcher that
    executes them (in any order) and reads the records back by
    content hash reconstructs exactly the grid ``run_figure5``
    returns.
    """
    from repro.sim import SimConfig

    sim = None if engine == "fast" else SimConfig(engine=engine)
    names = list(benchmarks) or [bm.name for bm in all_benchmarks()]
    keys: List[Tuple[str, HeuristicLevel, ConfigKey]] = []
    specs: List[RunSpec] = []
    for name in names:
        for level in levels:
            for n_pus, ooo in configs:
                keys.append((name, level, (n_pus, ooo)))
                specs.append(RunSpec(
                    benchmark=name, level=level, n_pus=n_pus,
                    out_of_order=ooo, scale=scale, sim=sim,
                ))
    return keys, specs


def run_figure5(
    benchmarks: Sequence[str] = (),
    configs: Sequence[ConfigKey] = DEFAULT_CONFIGS,
    levels: Sequence[HeuristicLevel] = LEVELS,
    scale: float = 1.0,
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    ledger: Optional[RunLedger] = None,
    resume: bool = False,
    engine: str = "fast",
) -> Figure5Result:
    """Run the Figure 5 grid (all benchmarks by default).

    The grid is submitted through the harness: ``jobs`` workers
    (``0``/``None`` = one per CPU), with compilation shared per
    (benchmark, level) and optional persistent caching.  ``engine``
    selects the simulation core (``"fast"``, ``"batched"`` or
    ``"reference"``); all three are bit-identical, so this only
    affects wall-clock time — and the cache key, which covers every
    ``SimConfig`` field.  With ``"batched"`` the scheduler runs each
    compile group (the machine configs of one (benchmark, level)) as
    one lockstep cohort.
    """
    keys, specs = figure5_specs(benchmarks, configs, levels, scale, engine)
    records = run_specs(specs, jobs=jobs, cache=cache, ledger=ledger,
                        resume=resume)
    result = Figure5Result()
    result.records = dict(zip(keys, records))
    return result


def format_figure5(result: Figure5Result, configs: Sequence[ConfigKey] = DEFAULT_CONFIGS) -> str:
    """Render the grid as the paper-style text report."""
    lines: List[str] = []
    names = sorted({key[0] for key in result.records})
    suites = {bm.name: bm.suite for bm in all_benchmarks()}
    for n_pus, ooo in configs:
        mode = "out-of-order" if ooo else "in-order"
        lines.append(f"== Figure 5 — {n_pus} PUs, {mode} PUs ==")
        header = f"{'benchmark':<12}" + "".join(
            f"{lvl.value:>18}" for lvl in LEVELS
        )
        lines.append(header)
        for name in names:
            if (name, HeuristicLevel.BASIC_BLOCK, (n_pus, ooo)) not in result.records:
                continue
            row = [f"{name:<12}"]
            for level in LEVELS:
                rec = result.records.get((name, level, (n_pus, ooo)))
                if rec is None:
                    row.append(f"{'-':>18}")
                    continue
                gain = result.improvement(name, level, (n_pus, ooo))
                row.append(f"{rec.ipc:>9.2f} ({gain:+5.1f}%)".rjust(18))
            lines.append("".join(row))
        for suite in ("int", "fp"):
            in_grid = [n for n in names if suites.get(n) == suite]
            if not in_grid:
                continue
            for level in LEVELS[1:]:
                try:
                    lo, hi = result.suite_improvement_range(
                        suite, level, (n_pus, ooo)
                    )
                except KeyError:
                    continue
                lines.append(
                    f"  {suite} suite, {level.value}: improvement over "
                    f"basic block {lo:+.1f}% .. {hi:+.1f}%"
                )
        lines.append("")
    return "\n".join(lines)
