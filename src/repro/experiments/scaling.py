"""The manycore scaling study: machine preset x heuristic x predictor.

Figure 5 sweeps the paper's 4/8 identical PUs; this grid opens the
machine axis the ROADMAP's scenario frontier names — heterogeneous
big.LITTLE rings, 16-PU mixed machines and 32/64/128-PU manycores
(with ring hop latency and ARB shape scaled by the registry), crossed
with the heuristic levels and the inter-task predictor kind.  The
headline question: does the *ranking* of the selection heuristics
change once the machine stops looking like the paper's — i.e. does
task selection have to be searched per machine?

Per-cell records carry per-PU utilization/occupancy telemetry
(``metrics["pu"]``), so :func:`format_scaling` can show which PUs
starve on heterogeneous presets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler import HeuristicLevel
from repro.experiments.figure5 import LEVELS
from repro.experiments.runner import RunRecord
from repro.harness.cache import ArtifactCache
from repro.harness.ledger import RunLedger
from repro.harness.scheduler import run_specs
from repro.harness.spec import RunSpec
from repro.machines import get_machine, resolve_machine, with_predictor

#: default machine axis: the paper anchor, both heterogeneity shapes,
#: and the first manycore ring (32 PUs — where acceptance demands a
#: ranking change to be demonstrable)
DEFAULT_MACHINES: Tuple[str, ...] = (
    "paper-4x2",
    "big-little-8",
    "hetero-16",
    "manycore-32",
)

#: default predictor axis (sweep "gshare"/"hybrid" explicitly)
DEFAULT_PREDICTORS: Tuple[str, ...] = ("path",)

#: default workloads: two integer + two fp SPEC95 stand-ins — small
#: enough to keep the 32-PU cells tractable, mixed enough that both
#: suites' behaviour shows
DEFAULT_BENCHMARKS: Tuple[str, ...] = (
    "compress",
    "m88ksim",
    "tomcatv",
    "swim",
)

Key = Tuple[str, str, str, HeuristicLevel]
"""(benchmark, machine preset, predictor, level)."""


@dataclass
class ScalingResult:
    """All runs of the scaling grid, indexed for reporting."""

    records: Dict[Key, RunRecord] = field(default_factory=dict)

    def cycles(self, benchmark: str, machine: str, predictor: str,
               level: HeuristicLevel) -> int:
        return self.records[(benchmark, machine, predictor, level)].cycles

    def ranking(self, benchmark: str, machine: str,
                predictor: str) -> Tuple[str, ...]:
        """Heuristic levels best-first by cycles (ties: level order)."""
        present = [
            level for level in LEVELS
            if (benchmark, machine, predictor, level) in self.records
        ]
        ordered = sorted(
            present,
            key=lambda level: (
                self.cycles(benchmark, machine, predictor, level),
                LEVELS.index(level),
            ),
        )
        return tuple(level.value for level in ordered)

    def ranking_changes(
        self, baseline: str = "paper-4x2"
    ) -> List[Tuple[str, str, str]]:
        """Cells whose heuristic ranking differs from ``baseline``.

        Returns (benchmark, machine, predictor) triples — the concrete
        evidence that selection must be searched per machine.
        """
        out: List[Tuple[str, str, str]] = []
        pairs = sorted({
            (bench, machine, predictor)
            for bench, machine, predictor, _ in self.records
        })
        for bench, machine, predictor in pairs:
            if machine == baseline:
                continue
            base_key = (bench, baseline, predictor)
            if not any(
                (bench, baseline, predictor, level) in self.records
                for level in LEVELS
            ):
                continue
            if self.ranking(bench, machine, predictor) != self.ranking(
                *base_key
            ):
                out.append((bench, machine, predictor))
        return out

    def utilization(self, key: Key) -> List[float]:
        """Per-PU useful/occupied ratios of one cell (from telemetry)."""
        metrics = self.records[key].metrics or {}
        pu = metrics.get("pu")
        if not pu:
            return []
        return [
            useful / occupied if occupied else 0.0
            for useful, occupied in zip(pu["useful"], pu["occupied"])
        ]


def scaling_specs(
    benchmarks: Sequence[str] = (),
    machines: Sequence[str] = DEFAULT_MACHINES,
    predictors: Sequence[str] = DEFAULT_PREDICTORS,
    levels: Sequence[HeuristicLevel] = LEVELS,
    scale: float = 1.0,
    engine: str = "fast",
) -> Tuple[List[Key], List[RunSpec]]:
    """The grid's (keys, specs) in canonical submission order.

    Machine names resolve (and lint) through the registry here, so a
    bad ``--machines`` entry fails before any cell is queued; the
    predictor axis derives per-cell variants of each preset, which
    hash distinctly because the predictor kind is a spec field.
    """
    from repro.sim import SimConfig

    names = list(benchmarks) or list(DEFAULT_BENCHMARKS)
    keys: List[Key] = []
    specs: List[RunSpec] = []
    for name in names:
        for machine_name in machines:
            base_spec = resolve_machine(machine_name)
            for predictor in predictors:
                machine = with_predictor(base_spec, predictor)
                sim = SimConfig(engine=engine, machine=machine)
                for level in levels:
                    keys.append((name, machine_name, predictor, level))
                    specs.append(RunSpec(
                        benchmark=name,
                        level=level,
                        n_pus=sim.n_pus,
                        out_of_order=True,
                        scale=scale,
                        sim=sim,
                    ))
    return keys, specs


def run_scaling(
    benchmarks: Sequence[str] = (),
    machines: Sequence[str] = DEFAULT_MACHINES,
    predictors: Sequence[str] = DEFAULT_PREDICTORS,
    levels: Sequence[HeuristicLevel] = LEVELS,
    scale: float = 1.0,
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    ledger: Optional[RunLedger] = None,
    resume: bool = False,
    engine: str = "fast",
) -> ScalingResult:
    """Run the scaling grid through the harness (see figure5 for the
    jobs/cache/ledger/engine contract — identical here)."""
    keys, specs = scaling_specs(
        benchmarks, machines, predictors, levels, scale, engine
    )
    records = run_specs(specs, jobs=jobs, cache=cache, ledger=ledger,
                        resume=resume)
    result = ScalingResult()
    result.records = dict(zip(keys, records))
    return result


def _utilization_summary(utils: List[float]) -> str:
    if not utils:
        return "-"
    return (
        f"{min(utils):.2f}/{sum(utils) / len(utils):.2f}/{max(utils):.2f}"
    )


def format_scaling(result: ScalingResult,
                   baseline: str = "paper-4x2") -> str:
    """Text report: per (machine, predictor) IPC tables, per-PU
    utilization spread, and the heuristic rankings vs ``baseline``."""
    lines: List[str] = []
    pairs = sorted({
        (machine, predictor)
        for _, machine, predictor, _ in result.records
    })
    benchmarks = sorted({key[0] for key in result.records})
    for machine, predictor in pairs:
        try:
            n_pus = get_machine(machine).n_pus
        except ValueError:
            n_pus = 0
        lines.append(
            f"== Scaling — {machine} ({n_pus} PUs), "
            f"{predictor} predictor =="
        )
        header = f"{'benchmark':<12}" + "".join(
            f"{lvl.value:>16}" for lvl in LEVELS
        ) + f"{'pu util lo/av/hi':>20}  ranking"
        lines.append(header)
        for bench in benchmarks:
            row_levels = [
                level for level in LEVELS
                if (bench, machine, predictor, level) in result.records
            ]
            if not row_levels:
                continue
            row = [f"{bench:<12}"]
            for level in LEVELS:
                rec = result.records.get((bench, machine, predictor, level))
                if rec is None:
                    row.append(f"{'-':>16}")
                else:
                    row.append(f"{rec.ipc:>16.2f}")
            best = row_levels[0]
            best_cycles = result.cycles(bench, machine, predictor, best)
            for level in row_levels[1:]:
                cycles = result.cycles(bench, machine, predictor, level)
                if cycles < best_cycles:
                    best, best_cycles = level, cycles
            utils = result.utilization((bench, machine, predictor, best))
            row.append(f"{_utilization_summary(utils):>20}")
            ranking = result.ranking(bench, machine, predictor)
            row.append("  " + " > ".join(ranking))
            lines.append("".join(row))
        lines.append("")
    changes = result.ranking_changes(baseline)
    if changes:
        lines.append(f"heuristic ranking changes vs {baseline}:")
        for bench, machine, predictor in changes:
            lines.append(
                f"  {bench}: {machine} ({predictor}) ranks "
                f"{' > '.join(result.ranking(bench, machine, predictor))}"
                f" vs {' > '.join(result.ranking(bench, baseline, predictor))}"
            )
    else:
        lines.append(
            f"no heuristic ranking changes vs {baseline} in this grid"
        )
    return "\n".join(lines)
