"""Table 1: dynamic task size, misprediction rates, window span.

Per benchmark the paper reports, for basic block / control flow /
data dependence tasks on 8 PUs:

* ``#dyn inst`` — mean dynamic instructions per task,
* ``#ct inst`` — mean dynamic control transfer instructions per task
  (multi-block tasks only),
* ``task pred`` — task misprediction percentage,
* ``br pred`` — the per-branch-equivalent misprediction percentage,
* ``win span`` — the window span (basic block and data dependence
  columns only).

Expected shape (Sections 4.3.2–4.3.4): heuristic tasks are several
times larger than basic block tasks; loop-level benchmarks keep the
best task prediction; window spans of data dependence tasks far exceed
basic block spans, with fp spans well above integer spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler import HeuristicLevel
from repro.experiments.runner import RunRecord
from repro.harness.cache import ArtifactCache
from repro.harness.ledger import RunLedger
from repro.harness.scheduler import run_specs
from repro.harness.spec import RunSpec
from repro.workloads import all_benchmarks

TABLE1_LEVELS: Tuple[HeuristicLevel, ...] = (
    HeuristicLevel.BASIC_BLOCK,
    HeuristicLevel.CONTROL_FLOW,
    HeuristicLevel.DATA_DEPENDENCE,
)


@dataclass
class Table1Result:
    """Records per (benchmark, level), measured on the 8-PU machine."""

    records: Dict[Tuple[str, HeuristicLevel], RunRecord] = field(
        default_factory=dict
    )

    def record(self, benchmark: str, level: HeuristicLevel) -> RunRecord:
        """One measured cell group."""
        return self.records[(benchmark, level)]


def table1_specs(
    benchmarks: Sequence[str] = (),
    n_pus: int = 8,
    scale: float = 1.0,
) -> Tuple[List[Tuple[str, HeuristicLevel]], List[RunSpec]]:
    """The grid's (keys, specs) — the job-serialization boundary."""
    names = list(benchmarks) or [bm.name for bm in all_benchmarks()]
    keys: List[Tuple[str, HeuristicLevel]] = []
    specs: List[RunSpec] = []
    for name in names:
        for level in TABLE1_LEVELS:
            keys.append((name, level))
            specs.append(RunSpec(
                benchmark=name, level=level, n_pus=n_pus,
                out_of_order=True, scale=scale,
            ))
    return keys, specs


def run_table1(
    benchmarks: Sequence[str] = (),
    n_pus: int = 8,
    scale: float = 1.0,
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    ledger: Optional[RunLedger] = None,
    resume: bool = False,
) -> Table1Result:
    """Measure every Table 1 column for the selected benchmarks."""
    keys, specs = table1_specs(benchmarks, n_pus, scale)
    records = run_specs(specs, jobs=jobs, cache=cache, ledger=ledger,
                        resume=resume)
    result = Table1Result()
    result.records = dict(zip(keys, records))
    return result


def format_table1(result: Table1Result) -> str:
    """Render the paper-style table."""
    lines: List[str] = []
    lines.append(
        f"{'':12}| {'Basic Block Tasks':^28} | {'Control Flow Tasks':^37} "
        f"| {'Data Dependence Tasks':^47}"
    )
    lines.append(
        f"{'benchmark':<12}| {'#dyn':>6} {'task%':>6} {'win':>7} "
        f"| {'#ct':>5} {'#dyn':>6} {'task%':>6} {'br%':>6} "
        f"| {'#ct':>5} {'#dyn':>6} {'task%':>6} {'br%':>6} {'win':>7}"
    )
    names = sorted({key[0] for key in result.records})
    for name in names:
        bb = result.record(name, HeuristicLevel.BASIC_BLOCK)
        cf = result.record(name, HeuristicLevel.CONTROL_FLOW)
        dd = result.record(name, HeuristicLevel.DATA_DEPENDENCE)
        lines.append(
            f"{name:<12}"
            f"| {bb.mean_task_size:>6.1f} {bb.task_misprediction_percent:>6.1f} "
            f"{bb.window_span_formula:>7.0f} "
            f"| {cf.mean_control_transfers:>5.1f} {cf.mean_task_size:>6.1f} "
            f"{cf.task_misprediction_percent:>6.1f} "
            f"{cf.branch_normalized_misprediction_percent:>6.1f} "
            f"| {dd.mean_control_transfers:>5.1f} {dd.mean_task_size:>6.1f} "
            f"{dd.task_misprediction_percent:>6.1f} "
            f"{dd.branch_normalized_misprediction_percent:>6.1f} "
            f"{dd.window_span_formula:>7.0f}"
        )
    return "\n".join(lines)
