"""The canonical experiment pipeline with compilation caching.

``run_benchmark`` executes the full flow of Section 4: build the
workload, apply the task selection heuristics, execute functionally,
split the trace into dynamic tasks, and replay it on the timing model.
Compilation products (partition / trace / stream) are cached per
``(benchmark, level, scale)`` so that machine sweeps (PU counts,
in-order vs out-of-order) reuse them.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.compiler import HeuristicLevel, SelectionConfig, TaskPartition, select_tasks
from repro.compiler.regcomm import ReleaseAnalysis
from repro.ir.interp import Trace, run_program
from repro.metrics import normalized_branch_misprediction, window_span
from repro.sim import (
    CycleBreakdown,
    MultiscalarMachine,
    SimConfig,
    TaskStream,
    build_task_stream,
)
from repro.workloads import get_benchmark

#: (benchmark, scale, input_set, profile_input,
#: *SelectionConfig.cache_key()).  The tail enumerates every config
#: field *by name* plus the resolved strategy — hand-picking fields
#: once caused configs differing only in unlisted fields to alias a
#: cached partition, and a positional tuple would alias across
#: field reorderings.
_CompileKey = Tuple


@dataclass
class Compiled:
    """Cached compilation products for one (benchmark, config)."""

    partition: TaskPartition
    trace: Trace
    stream: TaskStream
    release: ReleaseAnalysis


@dataclass
class RunRecord:
    """Everything one simulated run reports."""

    benchmark: str
    suite: str
    level: HeuristicLevel
    n_pus: int
    out_of_order: bool
    cycles: int
    instructions: int
    ipc: float
    dynamic_tasks: int
    mean_task_size: float
    mean_control_transfers: float
    mean_branches: float
    task_prediction_accuracy: float
    branch_prediction_accuracy: float
    control_squashes: int
    memory_squashes: int
    mean_window_span_measured: float
    breakdown: CycleBreakdown
    #: telemetry registry summary (counters + histograms); see
    #: :func:`repro.telemetry.metrics.run_metrics`
    metrics: Optional[Dict] = None

    @property
    def task_misprediction_percent(self) -> float:
        """Task misprediction rate in percent (Table 1 "task pred")."""
        return (1.0 - self.task_prediction_accuracy) * 100.0

    @property
    def branch_normalized_misprediction_percent(self) -> float:
        """Per-branch-equivalent misprediction percent (Table 1 "br pred")."""
        return 100.0 * normalized_branch_misprediction(
            1.0 - self.task_prediction_accuracy, self.mean_branches
        )

    @property
    def window_span_formula(self) -> float:
        """Window span via the Section 4.3.4 equation."""
        return window_span(
            self.mean_task_size, self.task_prediction_accuracy, self.n_pus
        )


_compile_cache: Dict[_CompileKey, Compiled] = {}

#: pre-built packed arrays donated for a pending compilation (see
#: :func:`offer_packed`), consumed by the next matching compile
_packed_offers: Dict[_CompileKey, object] = {}


def clear_cache() -> None:
    """Drop all cached compilations (tests use this for isolation)."""
    _compile_cache.clear()
    _packed_offers.clear()


def offer_packed(key: _CompileKey, packed) -> None:
    """Donate pre-built packed arrays for the compilation at ``key``.

    The next :func:`compile_benchmark` call with this key adopts the
    arrays instead of re-packing its trace — the shared-memory
    warm-start path (:mod:`repro.harness.shm`).  Safe because
    compilation is deterministic per key, the same contract the
    artifact cache's compiled products rely on; ignored when the key
    is already compiled in-process.
    """
    if key not in _compile_cache:
        _packed_offers[key] = packed


def resolve_selection(
    level: HeuristicLevel, selection: Optional[SelectionConfig]
) -> SelectionConfig:
    """The selection config a run will actually use."""
    selection = selection or SelectionConfig(level=level)
    if selection.level is not level:
        selection = replace(selection, level=level)
    return selection


def compile_cache_key(
    name: str,
    level: HeuristicLevel,
    scale: float = 1.0,
    selection: Optional[SelectionConfig] = None,
    input_set: str = "ref",
    profile_input: Optional[str] = None,
) -> _CompileKey:
    """In-memory cache key covering *every* selection field.

    Delegates the selection identity to
    :meth:`SelectionConfig.cache_key` — field names, resolved strategy
    and all — so configs differing in any field (including ones added
    later) can never alias, unlike the positional ``astuple`` form
    this replaced.
    """
    selection = resolve_selection(level, selection)
    profile_input = profile_input or input_set
    return (name, scale, input_set, profile_input) + selection.cache_key()


def seed_compiled(key: _CompileKey, compiled: Compiled) -> None:
    """Pre-populate the in-memory cache (harness warm-start path)."""
    _compile_cache.setdefault(key, compiled)


def peek_compiled(key: _CompileKey) -> Optional[Compiled]:
    """Look up a compilation without building it."""
    return _compile_cache.get(key)


def compile_benchmark(
    name: str,
    level: HeuristicLevel,
    scale: float = 1.0,
    selection: Optional[SelectionConfig] = None,
    input_set: str = "ref",
    profile_input: Optional[str] = None,
) -> Compiled:
    """Build, select tasks for, and trace one benchmark (cached).

    ``profile_input`` selects the input data used for *profiling*
    (task selection); ``input_set`` the data that is measured.  The
    default profiles and measures the same data, as in the paper; pass
    ``profile_input="train"`` to study profile-input sensitivity.
    """
    selection = resolve_selection(level, selection)
    profile_input = profile_input or input_set
    key = compile_cache_key(
        name, level, scale, selection, input_set, profile_input
    )
    cached = _compile_cache.get(key)
    if cached is not None:
        return cached
    offered = _packed_offers.pop(key, None)
    # Interpreting and packing a trace creates millions of short-lived
    # tracked objects; the cyclic collector only adds scan time here.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        benchmark = get_benchmark(name)
        program = benchmark.build(scale, input_set=profile_input)
        partition = select_tasks(program, selection)
        if profile_input != input_set:
            # Same static code, different data: measure the ref input
            # on the train-profiled partition (transforms never touch
            # data).
            measured = benchmark.build(scale, input_set=input_set)
            partition.program.memory_image = dict(measured.memory_image)
            trace = run_program(partition.program)
        elif partition.profile_trace is not None:
            # Selection already interpreted this exact program on this
            # exact input while profiling — reuse its trace.
            trace = partition.profile_trace
        else:
            trace = run_program(partition.program)
        stream = build_task_stream(trace, partition, packed=offered)
        release = ReleaseAnalysis(partition)
    finally:
        if gc_was_enabled:
            gc.enable()
    compiled = Compiled(partition, trace, stream, release)
    _compile_cache[key] = compiled
    return compiled


def _machine_config(
    sim: Optional[SimConfig], n_pus: int, out_of_order: bool
) -> SimConfig:
    """The concrete machine configuration one cell runs with.

    A ``sim`` carrying a machine spec is already fully resolved (the
    spec fixed ``n_pus``, topology and L1 scaling at construction) —
    the spec is authoritative and the cell's ``n_pus`` is ignored.
    The legacy homogeneous path scales the L1s for ``n_pus`` exactly
    as before.
    """
    config = sim or SimConfig()
    if config.machine is None:
        config = config.scaled_for_pus(n_pus)
    return replace(config, out_of_order=out_of_order)


def _cell_tag(name: str, level: HeuristicLevel, n_pus: int,
              out_of_order: bool) -> str:
    """Machine label used in diagnostics and telemetry."""
    return f"{name}/{level.value}/{n_pus}{'ooo' if out_of_order else 'ino'}"


def _assemble_record(
    name: str,
    suite: str,
    level: HeuristicLevel,
    n_pus: int,
    out_of_order: bool,
    compiled: Compiled,
    result,
) -> RunRecord:
    """Fold one simulation result into the canonical record shape.

    Shared by the single-cell and batched pipelines so a cell's record
    is byte-identical regardless of which path executed it.
    """
    stream = compiled.stream
    from repro.telemetry.metrics import run_metrics

    return RunRecord(
        benchmark=name,
        suite=suite,
        level=level,
        n_pus=n_pus,
        out_of_order=out_of_order,
        cycles=result.cycles,
        instructions=result.committed_instructions,
        ipc=result.ipc,
        dynamic_tasks=result.dynamic_tasks,
        mean_task_size=stream.mean_task_size,
        mean_control_transfers=stream.mean_control_transfers(),
        mean_branches=stream.mean_conditional_branches(),
        task_prediction_accuracy=result.task_prediction_accuracy,
        branch_prediction_accuracy=result.gshare_accuracy,
        control_squashes=result.control_squashes,
        memory_squashes=result.memory_squashes,
        mean_window_span_measured=result.mean_window_span,
        breakdown=result.breakdown,
        metrics=run_metrics(result, stream),
    )


def run_benchmark(
    name: str,
    level: HeuristicLevel,
    n_pus: int = 4,
    out_of_order: bool = True,
    scale: float = 1.0,
    selection: Optional[SelectionConfig] = None,
    sim: Optional[SimConfig] = None,
    input_set: str = "ref",
    profile_input: Optional[str] = None,
    monitor=None,
    fault_plan=None,
    tracer=None,
) -> RunRecord:
    """Run the full pipeline and return the measured record.

    ``monitor`` / ``fault_plan`` attach the reliability hooks (see
    :mod:`repro.reliability`) to the timing run: the monitor asserts
    the machine's architectural invariants, the fault plan injects
    seeded mispredictions and spurious violations.  ``tracer`` attaches
    a telemetry collector (see :mod:`repro.telemetry`) that records the
    task-lifecycle event stream for export.
    """
    benchmark = get_benchmark(name)
    compiled = compile_benchmark(
        name, level, scale, selection, input_set, profile_input
    )
    machine = MultiscalarMachine(
        compiled.stream,
        _machine_config(sim, n_pus, out_of_order),
        compiled.release,
        monitor,
        fault_plan,
        label=_cell_tag(name, level, n_pus, out_of_order),
        tracer=tracer,
    )
    result = machine.run()
    return _assemble_record(
        name, benchmark.suite, level, n_pus, out_of_order, compiled, result
    )


def run_benchmark_batch(specs) -> list:
    """Run several cells of ONE compile group as a batched cohort.

    ``specs`` is a sequence of :class:`~repro.harness.spec.RunSpec`
    sharing a compile signature (same benchmark, level, scale,
    selection, inputs — the harness scheduler groups by exactly this).
    The group compiles once, then every machine configuration advances
    in lockstep through :func:`repro.sim.batched.run_cohort`; records
    come back aligned with ``specs`` and are byte-identical to what
    :func:`run_benchmark` would produce cell by cell (the batched
    engine is validated bit-for-bit against the reference engine).
    """
    specs = list(specs)
    first = specs[0]
    benchmark = get_benchmark(first.benchmark)
    compiled = compile_benchmark(
        first.benchmark,
        first.level,
        first.scale,
        first.selection,
        first.input_set,
        first.profile_input,
    )
    from repro.sim.batched import run_cohort

    machines = []
    for spec in specs:
        config = _machine_config(spec.sim, spec.n_pus, spec.out_of_order)
        if config.engine != "batched":
            config = replace(config, engine="batched")
        machines.append(
            MultiscalarMachine(
                compiled.stream,
                config,
                compiled.release,
                label=_cell_tag(
                    spec.benchmark, spec.level, spec.n_pus, spec.out_of_order
                ),
            )
        )
    results = run_cohort(machines)
    return [
        _assemble_record(
            spec.benchmark,
            benchmark.suite,
            spec.level,
            spec.n_pus,
            spec.out_of_order,
            compiled,
            result,
        )
        for spec, result in zip(specs, results)
    ]
