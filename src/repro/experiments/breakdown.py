"""Figure 2 time line: where the PU-cycles go.

The paper's Figure 2 is a schematic of the execution-time categories;
this harness measures them: for each benchmark and heuristic level it
reports the fraction of PU-cycles in each
:class:`~repro.sim.breakdown.StallReason` category plus the control /
memory misspeculation penalties.

Expected shape: moving from basic block to heuristic tasks shifts
cycles out of task overhead and idle time; the data dependence
heuristic reduces inter-task communication stalls; misspeculation
penalties grow with task size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler import HeuristicLevel
from repro.experiments.runner import RunRecord
from repro.harness.cache import ArtifactCache
from repro.harness.ledger import RunLedger
from repro.harness.scheduler import run_specs
from repro.harness.spec import RunSpec
from repro.sim import StallReason

BREAKDOWN_LEVELS: Tuple[HeuristicLevel, ...] = (
    HeuristicLevel.BASIC_BLOCK,
    HeuristicLevel.CONTROL_FLOW,
    HeuristicLevel.DATA_DEPENDENCE,
    HeuristicLevel.TASK_SIZE,
)


@dataclass
class BreakdownResult:
    """Per (benchmark, level): the run record with its cycle accounting."""

    records: Dict[Tuple[str, HeuristicLevel], RunRecord] = field(
        default_factory=dict
    )

    def fractions(
        self, benchmark: str, level: HeuristicLevel
    ) -> Dict[str, float]:
        """Category -> fraction of all attributed PU-cycles."""
        record = self.records[(benchmark, level)]
        flat = record.breakdown.as_dict()
        total = sum(flat.values())
        if total == 0:
            return {key: 0.0 for key in flat}
        return {key: value / total for key, value in flat.items()}


def breakdown_specs(
    benchmarks: Sequence[str],
    n_pus: int = 4,
    levels: Sequence[HeuristicLevel] = BREAKDOWN_LEVELS,
    scale: float = 1.0,
) -> Tuple[List[Tuple[str, HeuristicLevel]], List[RunSpec]]:
    """The grid's (keys, specs) — the job-serialization boundary."""
    keys: List[Tuple[str, HeuristicLevel]] = []
    specs: List[RunSpec] = []
    for name in benchmarks:
        for level in levels:
            keys.append((name, level))
            specs.append(RunSpec(
                benchmark=name, level=level, n_pus=n_pus, scale=scale,
            ))
    return keys, specs


def run_breakdown(
    benchmarks: Sequence[str],
    n_pus: int = 4,
    levels: Sequence[HeuristicLevel] = BREAKDOWN_LEVELS,
    scale: float = 1.0,
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    ledger: Optional[RunLedger] = None,
    resume: bool = False,
) -> BreakdownResult:
    """Measure the cycle breakdown for the selected benchmarks."""
    keys, specs = breakdown_specs(benchmarks, n_pus, levels, scale)
    records = run_specs(specs, jobs=jobs, cache=cache, ledger=ledger,
                        resume=resume)
    result = BreakdownResult()
    result.records = dict(zip(keys, records))
    return result


_COLUMNS = [reason.value for reason in StallReason] + [
    "control_misspeculation",
    "memory_misspeculation",
]


def format_breakdown(result: BreakdownResult) -> str:
    """Render per-category percentage rows."""
    lines: List[str] = []
    short = {
        "useful": "useful",
        "task_start_overhead": "start",
        "task_end_overhead": "end",
        "intra_task_dependence": "intra",
        "inter_task_communication": "inter",
        "memory_stall": "mem",
        "memory_sync_wait": "sync",
        "fetch_stall": "fetch",
        "load_imbalance": "imbal",
        "idle": "idle",
        "control_misspeculation": "ctl-sq",
        "memory_misspeculation": "mem-sq",
    }
    header = f"{'benchmark/level':<28}" + "".join(
        f"{short[c]:>7}" for c in _COLUMNS
    )
    lines.append(header)
    for (name, level), _rec in sorted(
        result.records.items(), key=lambda kv: (kv[0][0], kv[0][1].rank)
    ):
        fractions = result.fractions(name, level)
        row = f"{name + '/' + level.value:<28}" + "".join(
            f"{100 * fractions.get(c, 0.0):>6.1f}%" for c in _COLUMNS
        )
        lines.append(row)
    return "\n".join(lines)
