"""Ablations of the design choices DESIGN.md calls out.

* :func:`sweep_max_targets` — the hardware-target width N
  (Section 2.4.2: tasks with more successors than the tables track
  lose prediction accuracy).
* :func:`sweep_thresholds` — CALL_THRESH / LOOP_THRESH (Section 3.2
  picked 30 to keep task overhead near 6 %).
* :func:`sweep_sync_table` — the memory dependence synchronisation
  table (Section 3.4 relies on it to avoid excessive squashing).
* :func:`sweep_forward_policy` — register communication scheduling
  (Section 3.3 / [18]): compiled release points vs oracle-eager vs
  task-end forwarding.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.compiler import HeuristicLevel, SelectionConfig
from repro.experiments.runner import RunRecord, run_benchmark
from repro.sim import SimConfig
from repro.sim.config import ForwardPolicy


def sweep_max_targets(
    benchmarks: Sequence[str],
    values: Sequence[int] = (1, 2, 4, 8),
    n_pus: int = 4,
    scale: float = 1.0,
) -> Dict[Tuple[str, int], RunRecord]:
    """IPC as a function of the successor limit N."""
    out: Dict[Tuple[str, int], RunRecord] = {}
    for name in benchmarks:
        for n in values:
            selection = SelectionConfig(
                level=HeuristicLevel.DATA_DEPENDENCE, max_targets=n
            )
            out[(name, n)] = run_benchmark(
                name,
                HeuristicLevel.DATA_DEPENDENCE,
                n_pus=n_pus,
                scale=scale,
                selection=selection,
            )
    return out


def sweep_thresholds(
    benchmarks: Sequence[str],
    values: Sequence[int] = (10, 30, 100),
    n_pus: int = 4,
    scale: float = 1.0,
) -> Dict[Tuple[str, int], RunRecord]:
    """IPC as CALL_THRESH = LOOP_THRESH varies (task size heuristic)."""
    out: Dict[Tuple[str, int], RunRecord] = {}
    for name in benchmarks:
        for thresh in values:
            selection = SelectionConfig(
                level=HeuristicLevel.TASK_SIZE,
                call_thresh=thresh,
                loop_thresh=thresh,
            )
            out[(name, thresh)] = run_benchmark(
                name,
                HeuristicLevel.TASK_SIZE,
                n_pus=n_pus,
                scale=scale,
                selection=selection,
            )
    return out


def sweep_sync_table(
    benchmarks: Sequence[str],
    n_pus: int = 4,
    scale: float = 1.0,
) -> Dict[Tuple[str, bool], RunRecord]:
    """Memory squashes and IPC with and without the sync table."""
    out: Dict[Tuple[str, bool], RunRecord] = {}
    for name in benchmarks:
        for enabled in (True, False):
            sim = SimConfig(sync_table_size=256 if enabled else 0)
            out[(name, enabled)] = run_benchmark(
                name,
                HeuristicLevel.DATA_DEPENDENCE,
                n_pus=n_pus,
                scale=scale,
                sim=sim,
            )
    return out


def sweep_arb_size(
    benchmarks: Sequence[str],
    values: Sequence[int] = (4, 32, 0),
    n_pus: int = 4,
    scale: float = 1.0,
) -> Dict[Tuple[str, int], RunRecord]:
    """IPC as ARB capacity varies (0 = unbounded).

    Section 2.4.1: large tasks may overflow the ARB and stall until
    speculation resolves; this is one of the paper's arguments for
    bounding task size.
    """
    out: Dict[Tuple[str, int], RunRecord] = {}
    for name in benchmarks:
        for entries in values:
            sim = SimConfig(arb_entries_per_pu=entries)
            out[(name, entries)] = run_benchmark(
                name,
                HeuristicLevel.TASK_SIZE,
                n_pus=n_pus,
                scale=scale,
                sim=sim,
            )
    return out


def sweep_forward_policy(
    benchmarks: Sequence[str],
    n_pus: int = 4,
    scale: float = 1.0,
) -> Dict[Tuple[str, ForwardPolicy], RunRecord]:
    """IPC under schedule / eager / lazy register forwarding."""
    out: Dict[Tuple[str, ForwardPolicy], RunRecord] = {}
    for name in benchmarks:
        for policy in ForwardPolicy:
            sim = SimConfig(forward_policy=policy)
            out[(name, policy)] = run_benchmark(
                name,
                HeuristicLevel.DATA_DEPENDENCE,
                n_pus=n_pus,
                scale=scale,
                sim=sim,
            )
    return out


def sweep_profile_input(
    benchmarks: Sequence[str],
    n_pus: int = 4,
    scale: float = 1.0,
) -> Dict[Tuple[str, str], RunRecord]:
    """Profile-input sensitivity: select tasks on "train" data, run
    "ref" data, vs the paper's same-input profiling.

    The heuristics only consume coarse frequencies (block counts,
    dependence ranks), so a representative train input should produce
    nearly the same partition and IPC.
    """
    out: Dict[Tuple[str, str], RunRecord] = {}
    for name in benchmarks:
        out[(name, "same-input")] = run_benchmark(
            name, HeuristicLevel.DATA_DEPENDENCE, n_pus=n_pus, scale=scale
        )
        out[(name, "train-profiled")] = run_benchmark(
            name,
            HeuristicLevel.DATA_DEPENDENCE,
            n_pus=n_pus,
            scale=scale,
            profile_input="train",
        )
    return out


def format_sweep(records: Dict, label: str) -> str:
    """Generic one-line-per-cell report for any sweep result."""
    lines: List[str] = [f"== ablation: {label} =="]
    for key, rec in sorted(records.items(), key=lambda kv: str(kv[0])):
        name, variant = key
        lines.append(
            f"{name:<12} {str(variant):<22} ipc={rec.ipc:5.2f} "
            f"taskpred={rec.task_prediction_accuracy:6.3f} "
            f"memsq={rec.memory_squashes:4d} ctlsq={rec.control_squashes:4d}"
        )
    return "\n".join(lines)
