"""Ablations of the design choices DESIGN.md calls out.

* :func:`sweep_max_targets` — the hardware-target width N
  (Section 2.4.2: tasks with more successors than the tables track
  lose prediction accuracy).
* :func:`sweep_thresholds` — CALL_THRESH / LOOP_THRESH (Section 3.2
  picked 30 to keep task overhead near 6 %).
* :func:`sweep_sync_table` — the memory dependence synchronisation
  table (Section 3.4 relies on it to avoid excessive squashing).
* :func:`sweep_forward_policy` — register communication scheduling
  (Section 3.3 / [18]): compiled release points vs oracle-eager vs
  task-end forwarding.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.compiler import HeuristicLevel, SelectionConfig
from repro.experiments.runner import RunRecord
from repro.harness.cache import ArtifactCache
from repro.harness.ledger import RunLedger
from repro.harness.scheduler import run_specs
from repro.harness.spec import RunSpec
from repro.sim import SimConfig
from repro.sim.config import ForwardPolicy


def _sweep(
    keys: List,
    specs: List[RunSpec],
    jobs: int,
    cache: Optional[ArtifactCache],
    ledger: Optional[RunLedger],
    resume: bool = False,
) -> Dict:
    """Submit a sweep grid through the harness and key its records."""
    return dict(zip(keys, run_specs(specs, jobs=jobs, cache=cache,
                                    ledger=ledger, resume=resume)))


def max_targets_specs(
    benchmarks: Sequence[str],
    values: Sequence[int] = (1, 2, 4, 8),
    n_pus: int = 4,
    scale: float = 1.0,
) -> Tuple[List, List[RunSpec]]:
    """(keys, specs) of the successor-limit sweep."""
    keys, specs = [], []
    for name in benchmarks:
        for n in values:
            keys.append((name, n))
            specs.append(RunSpec(
                benchmark=name,
                level=HeuristicLevel.DATA_DEPENDENCE,
                n_pus=n_pus,
                scale=scale,
                selection=SelectionConfig(
                    level=HeuristicLevel.DATA_DEPENDENCE, max_targets=n
                ),
            ))
    return keys, specs


def sweep_max_targets(
    benchmarks: Sequence[str],
    values: Sequence[int] = (1, 2, 4, 8),
    n_pus: int = 4,
    scale: float = 1.0,
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    ledger: Optional[RunLedger] = None,
    resume: bool = False,
) -> Dict[Tuple[str, int], RunRecord]:
    """IPC as a function of the successor limit N."""
    keys, specs = max_targets_specs(benchmarks, values, n_pus, scale)
    return _sweep(keys, specs, jobs, cache, ledger, resume)


def sweep_thresholds(
    benchmarks: Sequence[str],
    values: Sequence[int] = (10, 30, 100),
    n_pus: int = 4,
    scale: float = 1.0,
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    ledger: Optional[RunLedger] = None,
    resume: bool = False,
) -> Dict[Tuple[str, int], RunRecord]:
    """IPC as CALL_THRESH = LOOP_THRESH varies (task size heuristic)."""
    keys, specs = thresholds_specs(benchmarks, values, n_pus, scale)
    return _sweep(keys, specs, jobs, cache, ledger, resume)


def thresholds_specs(
    benchmarks: Sequence[str],
    values: Sequence[int] = (10, 30, 100),
    n_pus: int = 4,
    scale: float = 1.0,
) -> Tuple[List, List[RunSpec]]:
    """(keys, specs) of the CALL_THRESH/LOOP_THRESH sweep."""
    keys, specs = [], []
    for name in benchmarks:
        for thresh in values:
            keys.append((name, thresh))
            specs.append(RunSpec(
                benchmark=name,
                level=HeuristicLevel.TASK_SIZE,
                n_pus=n_pus,
                scale=scale,
                selection=SelectionConfig(
                    level=HeuristicLevel.TASK_SIZE,
                    call_thresh=thresh,
                    loop_thresh=thresh,
                ),
            ))
    return keys, specs


def sweep_sync_table(
    benchmarks: Sequence[str],
    n_pus: int = 4,
    scale: float = 1.0,
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    ledger: Optional[RunLedger] = None,
    resume: bool = False,
) -> Dict[Tuple[str, bool], RunRecord]:
    """Memory squashes and IPC with and without the sync table."""
    keys, specs = sync_table_specs(benchmarks, n_pus, scale)
    return _sweep(keys, specs, jobs, cache, ledger, resume)


def sync_table_specs(
    benchmarks: Sequence[str],
    n_pus: int = 4,
    scale: float = 1.0,
) -> Tuple[List, List[RunSpec]]:
    """(keys, specs) of the sync-table on/off sweep."""
    keys, specs = [], []
    for name in benchmarks:
        for enabled in (True, False):
            keys.append((name, enabled))
            specs.append(RunSpec(
                benchmark=name,
                level=HeuristicLevel.DATA_DEPENDENCE,
                n_pus=n_pus,
                scale=scale,
                sim=SimConfig(sync_table_size=256 if enabled else 0),
            ))
    return keys, specs


def sweep_arb_size(
    benchmarks: Sequence[str],
    values: Sequence[int] = (4, 32, 0),
    n_pus: int = 4,
    scale: float = 1.0,
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    ledger: Optional[RunLedger] = None,
    resume: bool = False,
) -> Dict[Tuple[str, int], RunRecord]:
    """IPC as ARB capacity varies (0 = unbounded).

    Section 2.4.1: large tasks may overflow the ARB and stall until
    speculation resolves; this is one of the paper's arguments for
    bounding task size.
    """
    keys, specs = arb_size_specs(benchmarks, values, n_pus, scale)
    return _sweep(keys, specs, jobs, cache, ledger, resume)


def arb_size_specs(
    benchmarks: Sequence[str],
    values: Sequence[int] = (4, 32, 0),
    n_pus: int = 4,
    scale: float = 1.0,
) -> Tuple[List, List[RunSpec]]:
    """(keys, specs) of the ARB-capacity sweep."""
    keys, specs = [], []
    for name in benchmarks:
        for entries in values:
            keys.append((name, entries))
            specs.append(RunSpec(
                benchmark=name,
                level=HeuristicLevel.TASK_SIZE,
                n_pus=n_pus,
                scale=scale,
                sim=SimConfig(arb_entries_per_pu=entries),
            ))
    return keys, specs


def sweep_forward_policy(
    benchmarks: Sequence[str],
    n_pus: int = 4,
    scale: float = 1.0,
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    ledger: Optional[RunLedger] = None,
    resume: bool = False,
) -> Dict[Tuple[str, ForwardPolicy], RunRecord]:
    """IPC under schedule / eager / lazy register forwarding."""
    keys, specs = forward_policy_specs(benchmarks, n_pus, scale)
    return _sweep(keys, specs, jobs, cache, ledger, resume)


def forward_policy_specs(
    benchmarks: Sequence[str],
    n_pus: int = 4,
    scale: float = 1.0,
) -> Tuple[List, List[RunSpec]]:
    """(keys, specs) of the register-forwarding-policy sweep."""
    keys, specs = [], []
    for name in benchmarks:
        for policy in ForwardPolicy:
            keys.append((name, policy))
            specs.append(RunSpec(
                benchmark=name,
                level=HeuristicLevel.DATA_DEPENDENCE,
                n_pus=n_pus,
                scale=scale,
                sim=SimConfig(forward_policy=policy),
            ))
    return keys, specs


def sweep_profile_input(
    benchmarks: Sequence[str],
    n_pus: int = 4,
    scale: float = 1.0,
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    ledger: Optional[RunLedger] = None,
    resume: bool = False,
) -> Dict[Tuple[str, str], RunRecord]:
    """Profile-input sensitivity: select tasks on "train" data, run
    "ref" data, vs the paper's same-input profiling.

    The heuristics only consume coarse frequencies (block counts,
    dependence ranks), so a representative train input should produce
    nearly the same partition and IPC.
    """
    keys, specs = profile_input_specs(benchmarks, n_pus, scale)
    return _sweep(keys, specs, jobs, cache, ledger, resume)


def profile_input_specs(
    benchmarks: Sequence[str],
    n_pus: int = 4,
    scale: float = 1.0,
) -> Tuple[List, List[RunSpec]]:
    """(keys, specs) of the profile-input-sensitivity sweep."""
    keys, specs = [], []
    for name in benchmarks:
        keys.append((name, "same-input"))
        specs.append(RunSpec(
            benchmark=name,
            level=HeuristicLevel.DATA_DEPENDENCE,
            n_pus=n_pus,
            scale=scale,
        ))
        keys.append((name, "train-profiled"))
        specs.append(RunSpec(
            benchmark=name,
            level=HeuristicLevel.DATA_DEPENDENCE,
            n_pus=n_pus,
            scale=scale,
            profile_input="train",
        ))
    return keys, specs


#: sweep name -> default-valued (keys, specs) builder taking
#: ``(benchmarks, n_pus=, scale=)`` — the job-serialization registry
#: the campaign service submits ablation grids through.
SWEEPS: Dict[str, Callable[..., Tuple[List, List[RunSpec]]]] = {
    "max_targets": max_targets_specs,
    "thresholds": thresholds_specs,
    "sync_table": sync_table_specs,
    "arb_size": arb_size_specs,
    "forward_policy": forward_policy_specs,
    "profile_input": profile_input_specs,
}


def format_sweep(records: Dict, label: str) -> str:
    """Generic one-line-per-cell report for any sweep result."""
    lines: List[str] = [f"== ablation: {label} =="]
    for key, rec in sorted(records.items(), key=lambda kv: str(kv[0])):
        name, variant = key
        lines.append(
            f"{name:<12} {str(variant):<22} ipc={rec.ipc:5.2f} "
            f"taskpred={rec.task_prediction_accuracy:6.3f} "
            f"memsq={rec.memory_squashes:4d} ctlsq={rec.control_squashes:4d}"
        )
    return "\n".join(lines)
