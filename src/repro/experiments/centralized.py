"""Distributed vs. centralized comparison (the paper's motivation).

Section 1 argues that a wide centralized window "may be harder to
engineer at high clock speeds due to quadratic wire delays", and that
a distributed Multiscalar organisation with good task selection can
match it.  This harness quantifies the trade on our substrate:

* **distributed** — the paper's machine: N narrow (2-wide) PUs running
  the selected tasks;
* **centralized** — one PU with the aggregate resources (N x issue
  width, N x ROB, N x issue list, N x every FU) executing the same
  program as a single sequential task stream (basic block tasks on one
  PU — no task speculation, no inter-task overheads).

The report includes the *break-even clock factor*: how much faster the
distributed design must clock (paper's premise: it clocks faster, not
slower) for equal performance.  A factor below 1.0 means the
distributed machine already wins at equal clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler import HeuristicLevel
from repro.experiments.runner import RunRecord
from repro.harness.cache import ArtifactCache
from repro.harness.ledger import RunLedger
from repro.harness.scheduler import run_specs
from repro.harness.spec import RunSpec
from repro.sim import SimConfig


def centralized_config(n_pus_equiv: int, base: SimConfig = None) -> SimConfig:
    """One PU with the aggregate resources of ``n_pus_equiv`` PUs."""
    base = base or SimConfig()
    return replace(
        base,
        n_pus=1,
        issue_width=base.issue_width * n_pus_equiv,
        fetch_width=base.fetch_width * n_pus_equiv,
        rob_size=base.rob_size * n_pus_equiv,
        issue_list_size=base.issue_list_size * n_pus_equiv,
        int_units=base.int_units * n_pus_equiv,
        fp_units=base.fp_units * n_pus_equiv,
        branch_units=base.branch_units * n_pus_equiv,
        mem_units=base.mem_units * n_pus_equiv,
        l1d=replace(base.l1d, size_bytes=16 * 1024 * n_pus_equiv),
        l1i=replace(base.l1i, size_bytes=16 * 1024 * n_pus_equiv),
    )


@dataclass
class CentralizedResult:
    """Per benchmark: the distributed and centralized run records."""

    n_pus: int = 8
    records: Dict[Tuple[str, str], RunRecord] = field(default_factory=dict)

    def break_even_clock_factor(self, benchmark: str) -> float:
        """Clock ratio at which distributed matches centralized.

        ``centralized_ipc / distributed_ipc``: values below 1.0 mean
        the distributed machine wins even at equal clock.
        """
        dist = self.records[(benchmark, "distributed")]
        cent = self.records[(benchmark, "centralized")]
        if dist.ipc == 0:
            return float("inf")
        return cent.ipc / dist.ipc


def centralized_specs(
    benchmarks: Sequence[str],
    n_pus: int = 8,
    scale: float = 1.0,
) -> Tuple[List[Tuple[str, str]], List[RunSpec]]:
    """The grid's (keys, specs) — the job-serialization boundary."""
    keys: List[Tuple[str, str]] = []
    specs: List[RunSpec] = []
    for name in benchmarks:
        keys.append((name, "distributed"))
        specs.append(RunSpec(
            benchmark=name, level=HeuristicLevel.DATA_DEPENDENCE,
            n_pus=n_pus, scale=scale,
        ))
        keys.append((name, "centralized"))
        specs.append(RunSpec(
            benchmark=name,
            level=HeuristicLevel.BASIC_BLOCK,  # sequential, no selection
            n_pus=1,
            scale=scale,
            sim=centralized_config(n_pus),
        ))
    return keys, specs


def run_centralized_comparison(
    benchmarks: Sequence[str],
    n_pus: int = 8,
    scale: float = 1.0,
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    ledger: Optional[RunLedger] = None,
    resume: bool = False,
) -> CentralizedResult:
    """Run the distributed vs. centralized grid."""
    keys, specs = centralized_specs(benchmarks, n_pus, scale)
    records = run_specs(specs, jobs=jobs, cache=cache, ledger=ledger,
                        resume=resume)
    result = CentralizedResult(n_pus=n_pus)
    result.records = dict(zip(keys, records))
    return result


def format_centralized(result: CentralizedResult) -> str:
    """Render the comparison report."""
    lines: List[str] = [
        f"== distributed ({result.n_pus} x 2-wide, task speculation) vs "
        f"centralized (1 x {2 * result.n_pus}-wide, no speculation) =="
    ]
    lines.append(
        f"{'benchmark':<12}{'dist IPC':>10}{'cent IPC':>10}"
        f"{'break-even clock':>18}"
    )
    names = sorted({key[0] for key in result.records})
    for name in names:
        dist = result.records[(name, "distributed")]
        cent = result.records[(name, "centralized")]
        factor = result.break_even_clock_factor(name)
        lines.append(
            f"{name:<12}{dist.ipc:>10.2f}{cent.ipc:>10.2f}{factor:>17.2f}x"
        )
    lines.append(
        "break-even clock < 1.0x: the distributed machine wins at equal "
        "clock; above 1.0x it needs its clock-speed advantage."
    )
    return "\n".join(lines)
