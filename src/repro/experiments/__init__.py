"""Experiment harnesses regenerating the paper's tables and figures.

* :mod:`~repro.experiments.runner` — one canonical pipeline run
  (build → select tasks → trace → task stream → simulate) with
  caching, so PU-count / issue-model sweeps share compilation work.
* :mod:`~repro.experiments.figure5` — Figure 5: IPC of the heuristic
  progression on 4 and 8 PUs, out-of-order and in-order.
* :mod:`~repro.experiments.table1` — Table 1: task size, control
  transfers per task, task/branch misprediction, window span.
* :mod:`~repro.experiments.breakdown` — Figure 2 cycle accounting.
* :mod:`~repro.experiments.ablations` — N-target / threshold /
  sync-table / forwarding-policy sweeps (DESIGN.md §4).
* :mod:`~repro.experiments.scaling` — the manycore scaling study:
  machine preset x heuristic level x predictor grids with per-PU
  utilization telemetry (DESIGN.md §16).

All grid drivers accept ``jobs`` / ``cache`` / ``ledger`` and submit
their cells through :mod:`repro.harness` — a process-pool scheduler
with a persistent artifact cache — instead of looping over
:func:`run_benchmark` themselves.  ``jobs=1`` (the default) is the
exact historical serial path.
"""

from repro.experiments.runner import (
    Compiled,
    RunRecord,
    clear_cache,
    compile_benchmark,
    compile_cache_key,
    run_benchmark,
)

__all__ = [
    "Compiled",
    "RunRecord",
    "clear_cache",
    "compile_benchmark",
    "compile_cache_key",
    "run_benchmark",
]
