"""Command line interface: ``python -m repro <command>``.

Commands:

* ``run`` — one benchmark under one heuristic level / machine config
  (``--machine`` names a machine-description preset).
* ``figure5`` — regenerate the Figure 5 grid.
* ``scaling`` — the manycore scaling study: machine preset ×
  heuristic level × predictor grids with per-PU utilization
  telemetry and heuristic-ranking comparison.
* ``table1`` — regenerate Table 1.
* ``breakdown`` — Figure 2 cycle accounting.
* ``centralized`` — distributed vs centralized motivation study.
* ``verify`` — differential oracle + invariant checks (optionally
  under seeded fault injection) for any set of workloads.
* ``bench`` — time a grid cold and check/update ``BENCH_sim.json``.
* ``trace`` — run one cell with the telemetry collector attached and
  export a Perfetto-loadable Chrome trace-event JSON timeline.
* ``report`` — diff two result sets (record grids, harness ledgers,
  bench baselines, or the built-in ``paper-table1``) cell by cell;
  exits non-zero when simulated cycles drifted.
* ``profile-sim`` — cProfile one simulation, print the hotspots.
* ``cache`` — inspect, audit (``doctor``), clear, or prune
  (``prune --max-bytes N``: evict least-recently-used artifacts)
  the cache.
* ``list`` — list the available benchmarks with static code counts
  (``--synth``: the synthetic-generator presets instead;
  ``--machines``: the machine-description presets with per-PU
  profiles; ``--json``: machine-readable).
* ``serve`` — run the campaign service: an async job queue sharding
  grid/fuzz submissions across worker processes behind an HTTP API
  (SIGTERM drains: checkpoint, requeue, resume on restart).
* ``chaos`` — seeded fault-injection campaign against an in-process
  service; proves convergence to byte-identical results under
  killed workers, hung shards, poison specs, journal write errors,
  and cache corruption.
* ``submit`` — submit a campaign to a running service
  (``--wait`` polls until the job finishes and prints its report).
* ``jobs`` — list a service's jobs (``--watch`` polls until the
  queue drains).
* ``fetch`` — fetch one cached run record from a service by its
  spec hash.
* ``gen`` — emit one seeded synthetic program as assembly text.
* ``fuzz`` — differential fuzzing campaign: N generated programs
  × all four heuristic levels × both engines, cross-checked with
  the reliability oracle; ``--minimize`` delta-debugs divergent
  programs to minimal reproducers; ``--strategy`` sweeps non-paper
  selection strategies as extra differential cells.
* ``tune`` — search-based autotuning of task selection: a seeded
  genetic algorithm (or random-search baseline) over the selection
  genome, scored by simulated cycles through the harness; resumable
  via its schema-versioned tune ledger, best-vs-baseline record
  grids diffable with ``repro report``.

Grid commands execute through :mod:`repro.harness`: ``--jobs N``
fans the grid out over N worker processes (0 = one per CPU), the
artifact cache under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``)
makes repeat sweeps near-instant (disable with ``--no-cache``),
``--resume`` replays the run ledger to skip cells a previous
(interrupted) invocation already finished, and ``--json PATH``
writes the machine-readable record grid.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.compiler import HeuristicLevel
from repro.experiments.breakdown import format_breakdown, run_breakdown
from repro.experiments.centralized import (
    format_centralized,
    run_centralized_comparison,
)
from repro.experiments.figure5 import format_figure5, run_figure5
from repro.experiments.runner import run_benchmark
from repro.experiments.table1 import format_table1, run_table1
from repro.harness import (
    ArtifactCache,
    RunLedger,
    grid_records,
    write_records_json,
)
from repro.harness.ledger import default_progress
from repro.workloads import all_benchmarks

_LEVELS = {level.value: level for level in HeuristicLevel}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale factor (default 1.0)",
    )
    parser.add_argument(
        "--benchmarks", default="",
        help="comma-separated benchmark names (default: all)",
    )
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="worker processes for the grid (default 0 = one per CPU)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent artifact cache",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip cells the run ledger records as already finished",
    )


def _names(args: argparse.Namespace) -> List[str]:
    return [n for n in args.benchmarks.split(",") if n]


def _harness_kwargs(args: argparse.Namespace) -> dict:
    """jobs / cache / ledger wiring shared by every grid command."""
    if args.no_cache:
        return {"jobs": args.jobs, "cache": None, "ledger": None}
    cache = ArtifactCache()
    ledger = RunLedger(cache.ledger_path, progress=default_progress())
    return {"jobs": args.jobs, "cache": cache, "ledger": ledger,
            "resume": getattr(args, "resume", False)}


def _maybe_json(args: argparse.Namespace, command: str, records_dict) -> None:
    if getattr(args, "json", None):
        write_records_json(
            args.json, command, grid_records(records_dict), args.scale
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Task Selection for a Multiscalar "
            "Processor' (MICRO-31, 1998)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one benchmark")
    run_p.add_argument("benchmark")
    run_p.add_argument(
        "--level", choices=sorted(_LEVELS), default="data_dependence"
    )
    run_p.add_argument("--pus", type=int, default=4)
    run_p.add_argument("--in-order", action="store_true")
    run_p.add_argument("--scale", type=float, default=1.0)
    run_p.add_argument("--engine", choices=["fast", "batched", "reference"],
                       default="fast",
                       help="simulation core (bit-identical results)")
    run_p.add_argument("--strategy", default="",
                       help="selection strategy name (see 'repro list "
                            "--strategies'; default: the --level reference)")
    run_p.add_argument("--machine", default="",
                       help="machine-description preset (see 'repro list "
                            "--machines'; overrides --pus)")

    fig_p = sub.add_parser("figure5", help="regenerate Figure 5")
    _add_common(fig_p)
    fig_p.add_argument("--engine", choices=["fast", "batched", "reference"],
                       default="fast",
                       help="simulation core (bit-identical results)")
    fig_p.add_argument("--pus", type=int, default=0,
                       help="restrict to one PU count (default: 4 and 8)")
    fig_p.add_argument("--in-order", action="store_true",
                       help="in-order PUs only (default: both)")
    fig_p.add_argument("--json", default="",
                       help="also write the record grid as JSON to this path")

    scal_p = sub.add_parser(
        "scaling",
        help="manycore scaling study: machine preset x heuristic "
             "level x predictor, with per-PU utilization telemetry",
    )
    _add_common(scal_p)
    scal_p.add_argument(
        "--machines", default="",
        help="comma-separated machine presets (see 'repro list "
             "--machines'; default: paper-4x2, big-little-8, "
             "hetero-16, manycore-32)",
    )
    scal_p.add_argument(
        "--predictors", default="",
        help="comma-separated inter-task predictor kinds (path, "
             "gshare, hybrid; default: path)",
    )
    scal_p.add_argument(
        "--levels", default="",
        help="comma-separated heuristic levels (default: all four)",
    )
    scal_p.add_argument("--engine", choices=["fast", "batched", "reference"],
                        default="fast",
                        help="simulation core (bit-identical results)")
    scal_p.add_argument(
        "--baseline", default="paper-4x2",
        help="machine preset heuristic rankings are compared against "
             "(default: paper-4x2)",
    )
    scal_p.add_argument("--json", default="",
                        help="also write the record grid as JSON to this "
                             "path")

    tab_p = sub.add_parser("table1", help="regenerate Table 1")
    _add_common(tab_p)
    tab_p.add_argument("--pus", type=int, default=8)
    tab_p.add_argument("--json", default="",
                       help="also write the record grid as JSON to this path")

    brk_p = sub.add_parser("breakdown", help="Figure 2 cycle accounting")
    _add_common(brk_p)
    brk_p.add_argument("--pus", type=int, default=4)
    brk_p.add_argument("--json", default="",
                       help="also write the record grid as JSON to this path")

    cen_p = sub.add_parser(
        "centralized",
        help="distributed vs centralized motivation study",
    )
    _add_common(cen_p)
    cen_p.add_argument("--pus", type=int, default=8)

    ver_p = sub.add_parser(
        "verify",
        help="differential oracle + invariant checks (optionally "
             "under seeded fault injection)",
    )
    ver_p.add_argument(
        "benchmarks", nargs="*",
        help="benchmarks to verify (default with --all: every one)",
    )
    ver_p.add_argument("--all", action="store_true",
                       help="verify every registered benchmark")
    ver_p.add_argument(
        "--levels", default="",
        help="comma-separated heuristic levels (default: all four)",
    )
    ver_p.add_argument("--pus", type=int, default=4)
    ver_p.add_argument("--in-order", action="store_true")
    ver_p.add_argument("--scale", type=float, default=1.0)
    ver_p.add_argument(
        "--faults", type=int, default=0,
        help="inject N seeded faults per cell to exercise recovery",
    )
    ver_p.add_argument("--seed", type=int, default=0,
                       help="base seed for the fault plans")
    ver_p.add_argument("--engine", choices=["fast", "batched", "reference"],
                       default="fast",
                       help="simulation core under test (default: fast)")

    bench_p = sub.add_parser(
        "bench",
        help="time a grid cold and check/update BENCH_sim.json",
    )
    bench_p.add_argument(
        "--grids", default="smoke",
        help="comma-separated grid names (figure5, smoke, micro; "
             "default: smoke)",
    )
    bench_p.add_argument(
        "--engines", default="fast",
        help="comma-separated engines to time (fast, batched, "
             "reference; default: fast)",
    )
    bench_p.add_argument("--jobs", type=int, default=1,
                         help="harness workers (default 1, the "
                              "baseline's configuration)")
    bench_p.add_argument(
        "--baseline", default="BENCH_sim.json",
        help="baseline file to check/update (default: BENCH_sim.json)",
    )
    bench_p.add_argument(
        "--check", action="store_true",
        help="fail if wall time regresses past the baseline tolerance",
    )
    bench_p.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed wall-time regression for --check (default 0.25)",
    )
    bench_p.add_argument(
        "--update", action="store_true",
        help="merge this run's measurements into the baseline file",
    )
    bench_p.add_argument(
        "--json", default="",
        help="also write this run's record to this path",
    )

    trace_p = sub.add_parser(
        "trace",
        help="export one run's task timeline as Chrome trace-event "
             "JSON (open in Perfetto / chrome://tracing)",
    )
    trace_p.add_argument("benchmark")
    trace_p.add_argument(
        "--level", choices=sorted(_LEVELS), default="data_dependence"
    )
    trace_p.add_argument("--pus", type=int, default=4)
    trace_p.add_argument("--in-order", action="store_true")
    trace_p.add_argument("--scale", type=float, default=1.0)
    trace_p.add_argument("--engine", choices=["fast", "batched", "reference"],
                         default="fast",
                         help="simulation core (identical event streams; "
                              "fast adds cycle-skip diagnostics)")
    trace_p.add_argument("-o", "--output", default="trace.json",
                         help="output path (default: trace.json)")
    trace_p.add_argument(
        "--no-engine-events", action="store_true",
        help="omit the engine-local cycle-skip track",
    )

    rep_p = sub.add_parser(
        "report",
        help="diff two result sets cell by cell; non-zero exit on "
             "simulated-cycle drift",
    )
    rep_p.add_argument(
        "a", help="baseline: records JSON, ledger.jsonl, bench record, "
                  "or the built-in 'paper-table1'",
    )
    rep_p.add_argument("b", help="comparison input (same formats)")
    rep_p.add_argument(
        "--tolerance", type=float, default=0.0,
        help="allowed relative cycle difference (default 0 = exact)",
    )

    prof_p = sub.add_parser(
        "profile-sim",
        help="cProfile one simulation and print the hotspots",
    )
    prof_p.add_argument("benchmark")
    prof_p.add_argument(
        "--level", choices=sorted(_LEVELS), default="data_dependence"
    )
    prof_p.add_argument("--pus", type=int, default=4)
    prof_p.add_argument("--in-order", action="store_true")
    prof_p.add_argument("--scale", type=float, default=1.0)
    prof_p.add_argument("--engine", choices=["fast", "batched", "reference"],
                        default="fast")
    prof_p.add_argument("--top", type=int, default=25,
                        help="number of hotspots to print (default 25)")
    prof_p.add_argument(
        "--sort", choices=["cumulative", "tottime"], default="cumulative",
        help="pstats sort order (default: cumulative)",
    )
    prof_p.add_argument(
        "--include-compile", action="store_true",
        help="profile compilation too, not just the timing run",
    )

    cache_p = sub.add_parser(
        "cache",
        help="inspect, audit (doctor), clear, or prune the artifact "
             "cache",
    )
    cache_p.add_argument("action",
                         choices=["stats", "clear", "doctor", "prune"])
    cache_p.add_argument(
        "--max-bytes", type=int, default=None,
        help="prune: evict least-recently-used artifacts until the "
             "store fits this many bytes (required for prune)",
    )

    list_p = sub.add_parser(
        "list",
        help="list the available benchmarks with static code counts",
    )
    list_p.add_argument(
        "--synth", action="store_true",
        help="list the synthetic-generator presets instead",
    )
    list_p.add_argument(
        "--strategies", action="store_true",
        help="list the registered selection strategies with their "
             "tunable parameters and defaults instead",
    )
    list_p.add_argument(
        "--machines", action="store_true",
        help="list the machine-description presets with their per-PU "
             "profiles, topology and predictor instead",
    )
    list_p.add_argument(
        "--json", action="store_true",
        help="emit the listing as machine-readable JSON",
    )

    gen_p = sub.add_parser(
        "gen",
        help="emit one seeded synthetic program as assembly text",
    )
    gen_p.add_argument("seed", type=int, help="generator seed")
    gen_p.add_argument(
        "--preset", default="default",
        help="synth parameter preset (see 'repro list --synth')",
    )
    gen_p.add_argument(
        "-o", "--output", default="",
        help="write the program here instead of stdout",
    )

    fuzz_p = sub.add_parser(
        "fuzz",
        help="differential fuzzing campaign over generated programs",
    )
    fuzz_p.add_argument(
        "--budget", type=int, required=True,
        help="number of programs to generate and cross-check",
    )
    fuzz_p.add_argument("--seed", type=int, default=1,
                        help="campaign seed (default 1)")
    fuzz_p.add_argument(
        "--preset", default="default",
        help="synth parameter preset (see 'repro list --synth')",
    )
    fuzz_p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (default 1 = serial in-process; "
             "0 = one per CPU)",
    )
    fuzz_p.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent artifact cache",
    )
    fuzz_p.add_argument(
        "--resume", action="store_true",
        help="skip cells the run ledger records as already finished",
    )
    fuzz_p.add_argument(
        "--ledger", default="",
        help="write the campaign ledger to this path (default: the "
             "artifact cache's ledger; none with --no-cache)",
    )
    fuzz_p.add_argument(
        "--minimize", action="store_true",
        help="delta-debug each divergent program to a minimal "
             "reproducer",
    )
    fuzz_p.add_argument(
        "--engine", action="append", dest="extra_engines",
        choices=["fast", "batched", "reference"], default=None,
        help="add an engine to the differential (repeatable); "
             "'--engine batched' cross-checks a third column beyond "
             "the default fast-vs-reference pair",
    )
    fuzz_p.add_argument(
        "--strategy", action="append", dest="strategies", default=None,
        help="non-paper selection strategy to sweep as an extra cell "
             "group per program (repeatable; default cost_model; "
             "'none' disables the sweep)",
    )
    fuzz_p.add_argument(
        "--machine", action="append", dest="machines", default=None,
        help="machine preset to sweep as an extra heterogeneous cell "
             "group per program (repeatable; default big-little-8; "
             "'none' disables the sweep)",
    )

    tune_p = sub.add_parser(
        "tune",
        help="autotune task selection: seeded GA / random search over "
             "the selection genome, scored by simulated cycles",
    )
    tune_p.add_argument(
        "benchmarks", nargs="*",
        help="target benchmark names (registry names or "
             "synth:<preset>:<seed>); fitness is summed cycles over "
             "all targets",
    )
    tune_p.add_argument(
        "--synth", default="", metavar="PRESET",
        help="add one synthetic target drawn from this preset (its "
             "program seed derives from --seed)",
    )
    tune_p.add_argument(
        "--budget", type=int, default=32,
        help="nominal genome evaluations (GA generations = "
             "ceil(budget / pop); default 32)",
    )
    tune_p.add_argument("--seed", type=int, default=1,
                        help="campaign seed (default 1)")
    tune_p.add_argument(
        "--jobs", type=int, default=0,
        help="worker processes per generation (default 0 = one per "
             "CPU; 1 = serial in-process)",
    )
    tune_p.add_argument(
        "--algo", choices=["ga", "random"], default="ga",
        help="search driver (default ga; random = uniform baseline)",
    )
    tune_p.add_argument(
        "--pop", type=int, default=8,
        help="GA population size / random-search batch (default 8)",
    )
    tune_p.add_argument("--n-pus", type=int, default=4,
                        help="processing units (default 4)")
    tune_p.add_argument(
        "--machine", default="paper-4x2",
        help="pin the machine gene to this preset (default "
             "paper-4x2, the legacy machine; 'search' frees the gene "
             "so the GA explores the machine axis)",
    )
    tune_p.add_argument(
        "--predictor", default="path",
        help="pin the predictor gene (path, gshare, hybrid; default "
             "path; 'search' frees the gene)",
    )
    tune_p.add_argument(
        "--in-order", action="store_true",
        help="tune for in-order PUs (default out-of-order)",
    )
    tune_p.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    tune_p.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent artifact cache",
    )
    tune_p.add_argument(
        "--ledger", default="",
        help="tune ledger path (default: <cache root>/tune/"
             "tune-<algo>-s<seed>-b<budget>.jsonl)",
    )
    tune_p.add_argument(
        "--resume", action="store_true",
        help="continue the campaign recorded in the ledger (replays "
             "completed evaluations instead of re-simulating)",
    )
    tune_p.add_argument(
        "--out", default="",
        help="write baseline.json + tuned.json record grids here "
             "(diff with 'repro report <out>/baseline.json "
             "<out>/tuned.json')",
    )
    tune_p.add_argument(
        "--json", action="store_true",
        help="print the campaign summary as JSON",
    )

    serve_p = sub.add_parser(
        "serve",
        help="run the campaign service (async job queue + HTTP API)",
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8753,
                         help="HTTP port (default 8753; 0 = ephemeral)")
    serve_p.add_argument("--workers", type=int, default=2,
                         help="shard worker processes (default 2)")
    serve_p.add_argument(
        "--journal", default="",
        help="journal directory (default: <cache root>/service); a "
             "restarted server resumes unfinished jobs from it",
    )
    serve_p.add_argument(
        "--executor", choices=["process", "thread", "inline"],
        default="process",
        help="worker pool flavour (default process)",
    )
    serve_p.add_argument(
        "--max-queue-depth", type=int, default=64,
        help="queued jobs admitted before POST /jobs answers 429 "
             "with Retry-After (default 64)",
    )
    serve_p.add_argument(
        "--request-timeout", type=float, default=30.0,
        help="seconds an HTTP handler waits on the event loop before "
             "answering 503 (default 30)",
    )
    serve_p.add_argument(
        "--drain-grace", type=float, default=30.0,
        help="seconds SIGTERM gives in-flight shards to finish "
             "before checkpointing and requeueing them (default 30)",
    )

    chaos_p = sub.add_parser(
        "chaos",
        help="seeded chaos campaign against an in-process service",
    )
    chaos_p.add_argument(
        "--budget", type=int, default=25,
        help="minimum faults to inject before stopping (default 25)",
    )
    chaos_p.add_argument("--seed", type=int, default=1,
                         help="fault schedule seed (default 1)")
    chaos_p.add_argument("--workers", type=int, default=2,
                         help="shard workers (default 2)")
    chaos_p.add_argument(
        "--max-rounds", type=int, default=12,
        help="submission rounds before giving up on the fault "
             "budget (default 12)",
    )
    chaos_p.add_argument(
        "--root", default="",
        help="directory for the campaign's cache + journal "
             "(default: a private temp dir, removed afterwards)",
    )
    chaos_p.add_argument("--json", action="store_true",
                         help="emit the report as JSON")

    sub_p = sub.add_parser(
        "submit",
        help="submit a campaign to a running service",
    )
    sub_p.add_argument(
        "grid",
        help="campaign to submit: figure5, table1, breakdown, "
             "centralized, scaling, fuzz, or ablation:<sweep>",
    )
    sub_p.add_argument("--url", default="http://127.0.0.1:8753",
                       help="service base URL")
    sub_p.add_argument("--benchmarks", default="",
                       help="comma-separated benchmark names")
    sub_p.add_argument("--scale", type=float, default=None,
                       help="workload scale factor")
    sub_p.add_argument("--levels", default="",
                       help="comma-separated heuristic levels")
    sub_p.add_argument("--budget", type=int, default=None,
                       help="fuzz: number of programs")
    sub_p.add_argument("--seed", type=int, default=None,
                       help="fuzz: campaign seed")
    sub_p.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="extra request parameter (JSON value; repeatable)",
    )
    sub_p.add_argument("--wait", action="store_true",
                       help="poll until the job finishes, print its report")
    sub_p.add_argument("--timeout", type=float, default=600.0,
                       help="--wait timeout in seconds (default 600)")

    jobs_p = sub.add_parser("jobs", help="list a service's jobs")
    jobs_p.add_argument("--url", default="http://127.0.0.1:8753",
                        help="service base URL")
    jobs_p.add_argument("--watch", action="store_true",
                        help="poll until no job is queued or running")
    jobs_p.add_argument("--timeout", type=float, default=600.0,
                        help="--watch timeout in seconds (default 600)")

    fetch_p = sub.add_parser(
        "fetch",
        help="fetch one cached run record from a service by spec hash",
    )
    fetch_p.add_argument("spec_hash", help="RunSpec content hash")
    fetch_p.add_argument("--url", default="http://127.0.0.1:8753",
                         help="service base URL")
    return parser


def _sim_for_engine(engine: str):
    """SimConfig override for a non-default engine (None = default)."""
    if engine == "fast":
        return None
    from repro.sim import SimConfig

    return SimConfig(engine=engine)


def _cmd_run(args: argparse.Namespace) -> str:
    from repro.compiler import SelectionConfig, get_strategy

    selection = None
    if args.strategy:
        selection = SelectionConfig(
            level=_LEVELS[args.level], strategy=args.strategy
        )
        try:
            get_strategy(selection)
        except ValueError as exc:
            raise SystemExit(f"repro run: {exc}")
    sim = _sim_for_engine(args.engine)
    n_pus = args.pus
    machine_note = ""
    if args.machine:
        from repro.machines import MachineSpecError, resolve_machine
        from repro.sim import SimConfig

        try:
            spec = resolve_machine(args.machine)
        except (MachineSpecError, ValueError) as exc:
            raise SystemExit(f"repro run: {exc}")
        sim = SimConfig(engine=args.engine, machine=spec)
        n_pus = spec.n_pus
        machine_note = f" [{spec.name}, {spec.predictor} predictor]"
    record = run_benchmark(
        args.benchmark,
        _LEVELS[args.level],
        n_pus=n_pus,
        out_of_order=not args.in_order,
        scale=args.scale,
        selection=selection,
        sim=sim,
    )
    strategy_note = f" [{args.strategy}]" if args.strategy else ""
    lines = [
        f"benchmark            : {record.benchmark} ({record.suite})",
        f"heuristic level      : {record.level.value}{strategy_note}",
        f"machine              : {record.n_pus} PUs, "
        f"{'out-of-order' if record.out_of_order else 'in-order'}"
        f"{machine_note}",
        f"instructions         : {record.instructions}",
        f"cycles               : {record.cycles}",
        f"IPC                  : {record.ipc:.3f}",
        f"dynamic tasks        : {record.dynamic_tasks}",
        f"mean task size       : {record.mean_task_size:.1f}",
        f"task mispredict      : {record.task_misprediction_percent:.1f}%",
        f"br-equivalent mispred: "
        f"{record.branch_normalized_misprediction_percent:.1f}%",
        f"window span (eq.)    : {record.window_span_formula:.0f}",
        f"window span (meas.)  : {record.mean_window_span_measured:.0f}",
        f"control squashes     : {record.control_squashes}",
        f"memory squashes      : {record.memory_squashes}",
    ]
    return "\n".join(lines)


def _cmd_figure5(args: argparse.Namespace) -> str:
    pus = [args.pus] if args.pus else [4, 8]
    modes = [False] if args.in_order else [True, False]
    configs = [(n, ooo) for ooo in modes for n in pus]
    result = run_figure5(
        benchmarks=_names(args), configs=configs, scale=args.scale,
        engine=args.engine, **_harness_kwargs(args),
    )
    _maybe_json(args, "figure5", result.records)
    return format_figure5(result, configs=configs)


def _cmd_scaling(args: argparse.Namespace) -> str:
    from repro.experiments.scaling import format_scaling, run_scaling
    from repro.machines import (
        PREDICTOR_KINDS,
        MachineSpecError,
        resolve_machine,
    )

    machines = [m for m in args.machines.split(",") if m]
    for name in machines:
        try:
            resolve_machine(name)
        except (MachineSpecError, ValueError) as exc:
            raise SystemExit(f"repro scaling: {exc}")
    predictors = [p for p in args.predictors.split(",") if p]
    for kind in predictors:
        if kind not in PREDICTOR_KINDS:
            raise SystemExit(
                f"repro scaling: unknown predictor {kind!r} "
                f"(choose from {', '.join(PREDICTOR_KINDS)})"
            )
    levels = [v for v in args.levels.split(",") if v]
    for value in levels:
        if value not in _LEVELS:
            raise SystemExit(
                f"repro scaling: unknown level {value!r} "
                f"(choose from {', '.join(sorted(_LEVELS))})"
            )
    axes: dict = {}
    if machines:
        axes["machines"] = tuple(machines)
    if predictors:
        axes["predictors"] = tuple(predictors)
    if levels:
        axes["levels"] = tuple(_LEVELS[v] for v in levels)
    result = run_scaling(
        benchmarks=_names(args),
        scale=args.scale,
        engine=args.engine,
        **axes,
        **_harness_kwargs(args),
    )
    _maybe_json(args, "scaling", result.records)
    return format_scaling(result, baseline=args.baseline)


def _cmd_table1(args: argparse.Namespace) -> str:
    result = run_table1(
        benchmarks=_names(args), n_pus=args.pus, scale=args.scale,
        **_harness_kwargs(args),
    )
    _maybe_json(args, "table1", result.records)
    return format_table1(result)


def _cmd_breakdown(args: argparse.Namespace) -> str:
    names = _names(args) or ["compress", "m88ksim", "tomcatv", "hydro2d"]
    result = run_breakdown(names, n_pus=args.pus, scale=args.scale,
                           **_harness_kwargs(args))
    _maybe_json(args, "breakdown", result.records)
    return format_breakdown(result)


def _cmd_centralized(args: argparse.Namespace) -> str:
    names = _names(args) or ["compress", "m88ksim", "tomcatv", "wave5"]
    result = run_centralized_comparison(names, n_pus=args.pus,
                                        scale=args.scale,
                                        **_harness_kwargs(args))
    return format_centralized(result)


def _cmd_verify(args: argparse.Namespace) -> str:
    from repro.reliability import verify_grid

    names = list(args.benchmarks)
    if not names and not args.all:
        raise SystemExit(
            "repro verify: name at least one benchmark or pass --all"
        )
    levels = [_LEVELS[v] for v in args.levels.split(",") if v] or None
    reports = verify_grid(
        benchmarks=names,
        levels=levels or tuple(HeuristicLevel),
        n_pus=args.pus,
        out_of_order=not args.in_order,
        scale=args.scale,
        faults=args.faults,
        seed=args.seed,
        engine=args.engine,
    )
    lines = [report.summary() for report in reports]
    bad = sum(1 for report in reports if not report.ok)
    lines.append(
        f"verified {len(reports)} cell(s): "
        f"{len(reports) - bad} ok, {bad} diverged"
    )
    if bad:
        raise SystemExit("\n".join(lines))
    return "\n".join(lines)


def _cmd_bench(args: argparse.Namespace) -> str:
    from repro import bench

    grids = [g for g in args.grids.split(",") if g]
    engines = [e for e in args.engines.split(",") if e]
    for grid in grids:
        if grid not in bench.GRIDS:
            raise SystemExit(
                f"repro bench: unknown grid {grid!r} "
                f"(choose from {', '.join(sorted(bench.GRIDS))})"
            )
    record = bench.run_bench(grids=grids, engines=engines, jobs=args.jobs)
    if args.json:
        bench.write_record(args.json, record)
    lines = [bench.format_record(record)]
    if args.check:
        baseline = bench.load_baseline(args.baseline)
        if baseline is None:
            raise SystemExit(
                f"repro bench: no readable baseline at {args.baseline}"
            )
        problems = bench.check_regression(
            record, baseline, tolerance=args.tolerance
        )
        if problems:
            raise SystemExit("\n".join(
                lines + [f"REGRESSION: {p}" for p in problems]
            ))
        lines.append(
            f"no regression vs {args.baseline} "
            f"(tolerance {args.tolerance:.0%})"
        )
    if args.update:
        bench.merge_into_baseline(args.baseline, record)
        lines.append(f"baseline {args.baseline} updated")
    return "\n".join(lines)


def _cmd_trace(args: argparse.Namespace) -> str:
    from repro.telemetry import TraceCollector, write_chrome_trace

    collector = TraceCollector()
    record = run_benchmark(
        args.benchmark,
        _LEVELS[args.level],
        n_pus=args.pus,
        out_of_order=not args.in_order,
        scale=args.scale,
        sim=_sim_for_engine(args.engine),
        tracer=collector,
    )
    payload = write_chrome_trace(
        args.output, collector,
        include_engine_events=not args.no_engine_events,
    )
    counts = collector.counts()
    tally = ", ".join(f"{kind}={n}" for kind, n in sorted(counts.items()))
    lines = [
        f"{args.benchmark}/{args.level}@{args.pus}pu "
        f"engine={args.engine}: {record.cycles} cycles, "
        f"{record.dynamic_tasks} tasks",
        f"{len(collector.events)} lifecycle event(s) ({tally})",
    ]
    if collector.engine_events and not args.no_engine_events:
        lines.append(
            f"{len(collector.engine_events)} fast-engine cycle skip(s) "
            f"on the 'engine' track"
        )
    lines.append(
        f"wrote {len(payload['traceEvents'])} trace event(s) to "
        f"{args.output} — open at https://ui.perfetto.dev "
        f"(1 µs = 1 cycle)"
    )
    return "\n".join(lines)


def _cmd_report(args: argparse.Namespace) -> str:
    from repro.telemetry import diff_cells, format_report, load_cells

    try:
        a = load_cells(args.a)
        b = load_cells(args.b)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro report: {exc}")
    rows = diff_cells(a, b, tolerance=args.tolerance)
    text = format_report(a, b, rows)
    if any(row.drifted for row in rows):
        raise SystemExit(text)
    return text


def _cmd_profile_sim(args: argparse.Namespace) -> str:
    import cProfile
    import io
    import pstats

    from repro.experiments.runner import compile_benchmark

    level = _LEVELS[args.level]
    profile = cProfile.Profile()
    if args.include_compile:
        profile.enable()
        record = run_benchmark(
            args.benchmark, level, n_pus=args.pus,
            out_of_order=not args.in_order, scale=args.scale,
            sim=_sim_for_engine(args.engine),
        )
        profile.disable()
    else:
        # Compile outside the profile so the report shows the
        # simulation itself, not the one-off trace build.
        compile_benchmark(args.benchmark, level, scale=args.scale)
        profile.enable()
        record = run_benchmark(
            args.benchmark, level, n_pus=args.pus,
            out_of_order=not args.in_order, scale=args.scale,
            sim=_sim_for_engine(args.engine),
        )
        profile.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profile, stream=buf)
    stats.sort_stats(args.sort).print_stats(args.top)
    mode = "ooo" if not args.in_order else "ino"
    header = (
        f"{args.benchmark}/{level.value}/{args.pus}{mode} "
        f"engine={args.engine}: {record.cycles} cycles, "
        f"{record.instructions} instructions, IPC {record.ipc:.3f}"
    )
    return header + "\n" + buf.getvalue().rstrip()


def _cmd_cache(args: argparse.Namespace) -> str:
    cache = ArtifactCache()
    if args.action == "clear":
        removed = cache.clear()
        return f"cleared {removed} artifact(s) from {cache.root}"
    if args.action == "doctor":
        report = cache.doctor()
        return "\n".join([
            f"cache root : {cache.root}",
            f"checked    : {report['checked']}",
            f"ok         : {report['ok']}",
            f"upgraded   : {report['upgraded']}",
            f"stale      : {report['stale']}",
            f"quarantined: {report['quarantined']}",
        ])
    if args.action == "prune":
        if args.max_bytes is None:
            raise SystemExit(
                "repro cache prune: --max-bytes is required"
            )
        if args.max_bytes < 0:
            raise SystemExit(
                "repro cache prune: --max-bytes must be >= 0"
            )
        report = cache.prune(args.max_bytes)
        return "\n".join([
            f"cache root : {cache.root}",
            f"removed    : {report['removed']} artifact(s), "
            f"{report['freed_bytes'] / 1024.0:.1f} KiB freed",
            f"kept       : {report['kept']} artifact(s), "
            f"{report['kept_bytes'] / 1024.0:.1f} KiB "
            f"(limit {args.max_bytes / 1024.0:.1f} KiB)",
        ])
    stats = cache.stats()
    return "\n".join([
        f"cache root : {cache.root}",
        f"records    : {stats['records']} "
        f"({stats['records_bytes'] / 1024.0:.1f} KiB)",
        f"compiled   : {stats['compiled']} "
        f"({stats['compiled_bytes'] / 1024.0:.1f} KiB)",
        f"quarantined: {stats['quarantined']}",
        f"size       : {stats['bytes'] / 1024.0:.1f} KiB",
        f"ledger     : {stats['ledger_lines']} line(s), "
        f"{stats['ledger_bytes'] / 1024.0:.1f} KiB",
        f"code salt  : {cache.salt[:16]}",
    ])


def _cmd_gen(args: argparse.Namespace) -> str:
    from repro.ir import program_to_text
    from repro.synth import PRESETS, generate_program, synth_name

    if args.preset not in PRESETS:
        raise SystemExit(
            f"repro gen: unknown preset {args.preset!r} "
            f"(choose from {', '.join(PRESETS)})"
        )
    program = generate_program(args.seed, PRESETS[args.preset])
    text = program_to_text(program)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        return (
            f"wrote {synth_name(args.preset, args.seed)} "
            f"({program.size} instructions) to {args.output}"
        )
    return text


def _cmd_fuzz(args: argparse.Namespace) -> str:
    from repro.synth import PRESETS, run_campaign
    from repro.synth.campaign import CampaignLedger

    if args.preset not in PRESETS:
        raise SystemExit(
            f"repro fuzz: unknown preset {args.preset!r} "
            f"(choose from {', '.join(PRESETS)})"
        )
    cache = None if args.no_cache else ArtifactCache()
    if args.ledger:
        ledger = CampaignLedger(args.ledger, progress=default_progress())
    elif cache is not None:
        ledger = CampaignLedger(cache.ledger_path,
                                progress=default_progress())
    else:
        ledger = None
    from repro.synth.campaign import ENGINES

    engines = list(ENGINES)
    for engine in args.extra_engines or ():
        if engine not in engines:
            engines.append(engine)
    strategies = _fuzz_strategies(args.strategies)
    machines = _fuzz_machines(args.machines)
    result = run_campaign(
        budget=args.budget, seed=args.seed, preset=args.preset,
        jobs=args.jobs, cache=cache, ledger=ledger,
        resume=args.resume, minimize=args.minimize,
        engines=tuple(engines), strategies=strategies,
        machines=machines,
    )
    lines = [result.summary()]
    counters = (result.metrics or {}).get("counters", {})
    lines.append(
        "counters: " + ", ".join(
            f"{name}={value}" for name, value in sorted(counters.items())
        )
    )
    for name, text in result.reduced.items():
        lines.append(f"--- minimized reproducer for {name} ---")
        lines.append(text)
    if not result.ok:
        raise SystemExit("\n".join(lines))
    return "\n".join(lines)


def _fuzz_strategies(requested) -> tuple:
    """Resolve ``repro fuzz --strategy`` into validated names.

    Default sweeps ``cost_model`` so every fuzz campaign covers the
    pluggable-strategy dispatch path; ``--strategy none`` disables.
    """
    from repro.compiler import strategy_names
    from repro.compiler.strategy import REFERENCE_STRATEGIES

    if requested is None:
        return ("cost_model",)
    names = tuple(s for s in requested if s != "none")
    known = set(strategy_names()) - set(REFERENCE_STRATEGIES)
    unknown = [s for s in names if s not in known]
    if unknown:
        raise SystemExit(
            f"repro fuzz: unknown non-paper strategy "
            f"{', '.join(unknown)} (choose from {', '.join(sorted(known))})"
        )
    return names


def _fuzz_machines(requested) -> tuple:
    """Resolve ``repro fuzz --machine`` into validated preset names.

    Default sweeps ``big-little-8`` so every fuzz campaign covers the
    heterogeneous machine path; ``--machine none`` disables.
    """
    from repro.machines import MachineSpecError, resolve_machine

    if requested is None:
        return ("big-little-8",)
    names = tuple(m for m in requested if m != "none")
    for name in names:
        try:
            resolve_machine(name)
        except (MachineSpecError, ValueError) as exc:
            raise SystemExit(f"repro fuzz: {exc}")
    return names


def _cmd_tune(args: argparse.Namespace) -> str:
    import json as _json
    from pathlib import Path

    from repro.synth import PRESETS
    from repro.synth.campaign import program_seed
    from repro.tune import TuneLedger, tune, tune_summary, write_tune_reports

    targets = list(args.benchmarks)
    if args.synth:
        if args.synth not in PRESETS:
            raise SystemExit(
                f"repro tune: unknown preset {args.synth!r} "
                f"(choose from {', '.join(PRESETS)})"
            )
        targets.append(f"synth:{args.synth}:{program_seed(args.seed, 0)}")
    if not targets:
        raise SystemExit(
            "repro tune: name at least one benchmark or pass --synth "
            "PRESET (e.g. 'repro tune compress' or 'repro tune "
            "--synth loops')"
        )
    cache = None if args.no_cache else ArtifactCache()
    ledger_path = args.ledger
    if not ledger_path and cache is not None:
        ledger_path = str(
            Path(cache.root) / "tune"
            / f"tune-{args.algo}-s{args.seed}-b{args.budget}.jsonl"
        )
    ledger = None
    if ledger_path:
        path = Path(ledger_path)
        if path.exists() and path.stat().st_size and not args.resume:
            raise SystemExit(
                f"repro tune: {path} already holds a campaign ledger; "
                f"pass --resume to continue it or point --ledger at a "
                f"fresh path"
            )
        try:
            ledger = TuneLedger(path)
        except ValueError as exc:
            raise SystemExit(f"repro tune: {exc}")
    try:
        result = tune(
            targets, budget=args.budget, seed=args.seed, algo=args.algo,
            jobs=args.jobs or None, pop_size=args.pop, ledger=ledger,
            cache=cache, n_pus=args.n_pus,
            out_of_order=not args.in_order, scale=args.scale,
            machine=None if args.machine == "search" else args.machine,
            predictor=(None if args.predictor == "search"
                       else args.predictor),
        )
    except ValueError as exc:
        raise SystemExit(f"repro tune: {exc}")
    summary = tune_summary(result)
    report_hint = ""
    if args.out:
        baseline_path, tuned_path = write_tune_reports(result, args.out)
        summary["reports"] = {
            "baseline": str(baseline_path), "tuned": str(tuned_path),
        }
        report_hint = (
            f"wrote {baseline_path} and {tuned_path}; diff with: "
            f"repro report {baseline_path} {tuned_path}"
        )
    if args.json:
        return _json.dumps(summary, indent=2, sort_keys=True)
    genome = result.best_genome.as_dict()
    delta = result.best_fitness - result.baseline_fitness
    pct = (100.0 * delta / result.baseline_fitness
           if result.baseline_fitness else 0.0)
    lines = [
        f"tune campaign: algo={result.algo} seed={result.seed} "
        f"budget={result.budget} pop={result.pop_size} "
        f"generations={result.generations} "
        f"evaluations={result.evaluations}",
        f"targets: {', '.join(result.targets)}",
        f"baseline (paper heuristic_3): {result.baseline_fitness:,} "
        f"cycles",
        f"best genome {result.best_hash}: {result.best_fitness:,} "
        f"cycles ({delta:+,}, {pct:+.1f}%)",
        "  " + " ".join(f"{k}={v}" for k, v in genome.items()),
        "per-target cycles (baseline -> tuned):",
    ]
    for target in result.targets:
        base = result.baseline_cycles.get(target, 0)
        best = result.best_cycles.get(target, 0)
        mark = " *" if best < base else ""
        lines.append(f"  {target}: {base:,} -> {best:,}{mark}")
    if ledger is not None:
        lines.append(f"ledger: {ledger.path}")
    if report_hint:
        lines.append(report_hint)
    return "\n".join(lines)


def _cmd_list(args: argparse.Namespace) -> str:
    import json as _json

    if getattr(args, "machines", False):
        from repro.machines import describe_machines

        described = describe_machines()
        if getattr(args, "json", False):
            return _json.dumps({"machines": described}, indent=2,
                               sort_keys=True)
        lines = [
            f"{'name':<14} {'PUs':>4} {'predictor':<10} "
            f"{'hop':>4} {'bw':>4} {'hash':<18} profile"
        ]
        for entry in described:
            hop = entry["ring_hop_latency"]
            bw = entry["ring_bandwidth"]
            profiles = {}
            for pu in entry["pus"]:
                profiles[pu["name"]] = profiles.get(pu["name"], 0) + 1
            shape = " + ".join(
                f"{count}x{name}" for name, count in profiles.items()
            )
            lines.append(
                f"{entry['name']:<14} {entry['n_pus']:>4} "
                f"{entry['predictor']:<10} "
                f"{hop if hop is not None else '-':>4} "
                f"{bw if bw is not None else '-':>4} "
                f"{entry['hash']:<18} {shape}"
            )
        lines.append(
            "use with 'repro run --machine <name>', 'repro scaling "
            "--machines ...', or SimConfig(machine=<name>); '-' "
            "topology fields inherit the SimConfig defaults"
        )
        return "\n".join(lines)
    if getattr(args, "strategies", False):
        from repro.compiler import describe_strategies

        described = describe_strategies()
        if getattr(args, "json", False):
            return _json.dumps({"strategies": described}, indent=2,
                               sort_keys=True)
        lines = [
            f"{'name':<16} {'kind':<10} {'class':<18} description"
        ]
        for entry in described:
            lines.append(
                f"{entry['name']:<16} {entry['kind']:<10} "
                f"{entry['class']:<18} {entry['description']}"
            )
            tunables = entry["tunables"]
            if tunables:
                params = ", ".join(
                    f"{k}={v}" for k, v in tunables.items()
                )
                lines.append(f"{'':<16} tunables: {params}")
        lines.append(
            "select with SelectionConfig(strategy=<name>); '' = the "
            "paper reference strategy of the configured level"
        )
        return "\n".join(lines)
    if getattr(args, "json", False):
        if getattr(args, "synth", False):
            from repro.synth import PRESETS

            payload = {
                "presets": [
                    {
                        "name": name,
                        "functions": params.functions,
                        "nest_depth": params.nest_depth,
                        "loop_body_target": params.loop_body_target,
                        "callee_target": params.callee_target,
                        "mem_prob": params.mem_prob,
                        "fp_prob": params.fp_prob,
                        "region_weights": list(params.region_weights()),
                    }
                    for name, params in PRESETS.items()
                ],
            }
        else:
            benchmarks = []
            for bm in all_benchmarks():
                program = bm.build(1.0)
                functions = list(program.functions())
                benchmarks.append({
                    "name": bm.name,
                    "suite": bm.suite,
                    "functions": len(functions),
                    "blocks": sum(
                        len(list(f.blocks())) for f in functions
                    ),
                    "instructions": program.size,
                    "description": bm.description,
                })
            payload = {"benchmarks": benchmarks}
        return _json.dumps(payload, indent=2, sort_keys=True)
    if getattr(args, "synth", False):
        from repro.synth import PRESETS

        lines = [
            f"{'preset':<10} {'funcs':>5} {'nest':>4} {'body':>4} "
            f"{'callee':>6} {'mem':>5} {'fp':>5}  region weights "
            f"(line/diamond/fanout/loop/call)"
        ]
        for name, params in PRESETS.items():
            weights = "/".join(str(w) for w in params.region_weights())
            lines.append(
                f"{name:<10} {params.functions:>5} "
                f"{params.nest_depth:>4} {params.loop_body_target:>4} "
                f"{params.callee_target:>6} {params.mem_prob:>5.2f} "
                f"{params.fp_prob:>5.2f}  {weights}"
            )
        lines.append(
            "use as benchmarks: synth:<preset>:<seed> "
            "(e.g. 'repro run synth:loops:7')"
        )
        return "\n".join(lines)
    lines = [
        f"{'name':<10} {'suite':<7} {'funcs':>5} {'blocks':>6} "
        f"{'insts':>6}  description"
    ]
    for bm in all_benchmarks():
        program = bm.build(1.0)
        functions = list(program.functions())
        blocks = sum(len(list(f.blocks())) for f in functions)
        lines.append(
            f"{bm.name:<10} {bm.suite:<7} {len(functions):>5} "
            f"{blocks:>6} {program.size:>6}  {bm.description}"
        )
    return "\n".join(lines)


def _cmd_serve(args: argparse.Namespace) -> str:
    from repro.service import CampaignService

    cache = ArtifactCache()
    service = CampaignService(
        cache=cache,
        journal_root=args.journal or None,
        host=args.host, port=args.port,
        workers=args.workers, executor=args.executor,
        max_queue_depth=args.max_queue_depth,
        request_timeout=args.request_timeout,
    )
    service.start()
    service.install_sigterm_drain(grace=args.drain_grace)
    print("\n".join([
        f"campaign service listening on {service.base_url}",
        f"cache root : {cache.root}",
        f"journal    : {service.journal.root}",
        f"workers    : {args.workers} ({args.executor})",
        f"resumed    : {service.resumed} job(s)",
        "Ctrl-C to stop; SIGTERM to drain (journalled jobs resume "
        "on restart)",
    ]), flush=True)
    service.serve_forever()
    return "campaign service stopped"


def _cmd_chaos(args: argparse.Namespace) -> str:
    import json as _json

    from repro.service.chaos import run_chaos_campaign

    report = run_chaos_campaign(
        budget=args.budget,
        seed=args.seed,
        root=args.root or None,
        workers=args.workers,
        max_rounds=args.max_rounds,
        # progress goes to stderr under --json so stdout stays a
        # single parseable document even when redirected to a file
        progress=lambda line: print(
            f"  {line}", flush=True,
            file=sys.stderr if args.json else sys.stdout,
        ),
    )
    if args.json:
        from dataclasses import asdict

        payload = asdict(report)
        payload["ok"] = report.ok
        out = _json.dumps(payload, indent=2, sort_keys=True)
    else:
        out = report.summary()
    if not report.ok:
        raise SystemExit(out)
    return out


def _submit_params(args: argparse.Namespace) -> dict:
    import json as _json

    params: dict = {}
    if args.benchmarks:
        params["benchmarks"] = [
            n for n in args.benchmarks.split(",") if n
        ]
    if args.scale is not None:
        params["scale"] = args.scale
    if args.levels:
        params["levels"] = [v for v in args.levels.split(",") if v]
    if args.budget is not None:
        params["budget"] = args.budget
    if args.seed is not None:
        params["seed"] = args.seed
    for item in args.param:
        key, sep, value = item.partition("=")
        if not sep:
            raise SystemExit(
                f"repro submit: --param needs KEY=VALUE, got {item!r}"
            )
        try:
            params[key] = _json.loads(value)
        except ValueError:
            params[key] = value
    return params


def _format_job_row(job: dict) -> str:
    cells = job.get("cells") or 0
    misses = job.get("misses")
    hits = job.get("hits")
    tally = ""
    if misses is not None or hits is not None:
        tally = f"  ran={misses or 0} cached={hits or 0}"
    flag = " (resumed)" if job.get("resumed") else ""
    return (
        f"{job['job_id']:<36} {job['state']:<10} "
        f"cells={cells}{tally}{flag}"
    )


def _cmd_submit(args: argparse.Namespace) -> str:
    from repro.service import ServiceUnavailable, parse_grid_arg
    from repro.service.client import ServiceClient, ServiceError

    payload = parse_grid_arg(args.grid)
    payload["params"].update(_submit_params(args))
    client = ServiceClient(args.url)
    try:
        job = client.submit(payload["kind"], payload["params"])
    except (ServiceError, ServiceUnavailable) as exc:
        raise SystemExit(f"repro submit: {exc}")
    lines = [_format_job_row(job)]
    if not args.wait:
        return "\n".join(lines)
    try:
        view = client.wait(job["job_id"], timeout=args.timeout)
    except (TimeoutError, ServiceUnavailable) as exc:
        raise SystemExit(f"repro submit: {exc}")
    except KeyboardInterrupt:
        # The job keeps running server-side; leaving the wait is not
        # an error.  Point at the watch command and exit cleanly.
        return "\n".join(lines + [
            f"wait interrupted; job {job['job_id']} continues — "
            f"check it with: repro jobs --url {args.url}",
        ])
    final = view["job"]
    lines = [_format_job_row(final)]
    if final["state"] != "done":
        detail = final.get("error") or final["state"]
        raise SystemExit("\n".join(lines + [f"repro submit: {detail}"]))
    result = view.get("result") or {}
    if "report" in result:
        lines.append(result["report"])
    return "\n".join(lines)


def _cmd_jobs(args: argparse.Namespace) -> str:
    import time as _time

    from repro.service import ServiceUnavailable
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    deadline = _time.monotonic() + args.timeout
    jobs: list = []
    try:
        while True:
            try:
                jobs = client.jobs()
            except ServiceUnavailable as exc:
                raise SystemExit(f"repro jobs: {exc}")
            if not args.watch:
                break
            active = [
                j for j in jobs if j["state"] in ("queued", "running")
            ]
            if not active:
                break
            if _time.monotonic() >= deadline:
                raise SystemExit(
                    f"repro jobs: {len(active)} job(s) still active "
                    f"after {args.timeout:.0f}s"
                )
            _time.sleep(0.2)
    except KeyboardInterrupt:
        # Ctrl-C out of --watch is a normal way to stop looking, not
        # an error: show the last snapshot and exit cleanly.
        print("", flush=True)
        if not jobs:
            return "watch interrupted; no jobs"
        return "\n".join(
            ["watch interrupted; last snapshot:"]
            + [_format_job_row(job) for job in jobs]
        )
    if not jobs:
        return "no jobs"
    return "\n".join(_format_job_row(job) for job in jobs)


def _cmd_fetch(args: argparse.Namespace) -> str:
    import json as _json

    from repro.service import ServiceUnavailable
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        view = client.record(args.spec_hash)
    except (ServiceError, ServiceUnavailable) as exc:
        raise SystemExit(f"repro fetch: {exc}")
    return _json.dumps(view, indent=2, sort_keys=True)


_COMMANDS = {
    "run": _cmd_run,
    "figure5": _cmd_figure5,
    "scaling": _cmd_scaling,
    "table1": _cmd_table1,
    "breakdown": _cmd_breakdown,
    "centralized": _cmd_centralized,
    "verify": _cmd_verify,
    "bench": _cmd_bench,
    "trace": _cmd_trace,
    "report": _cmd_report,
    "profile-sim": _cmd_profile_sim,
    "cache": _cmd_cache,
    "list": _cmd_list,
    "gen": _cmd_gen,
    "fuzz": _cmd_fuzz,
    "tune": _cmd_tune,
    "serve": _cmd_serve,
    "chaos": _cmd_chaos,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "fetch": _cmd_fetch,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    print(_COMMANDS[args.command](args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
