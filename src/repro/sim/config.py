"""Machine configuration (defaults mirror Section 4.2 of the paper).

The paper's per-PU pipeline: 2-way issue, 16-entry reorder buffer,
8-entry issue list, two integer / one floating point / one branch /
one memory functional unit.  The register communication ring carries
2 values per cycle per PU and bypasses adjacent PUs in the same cycle.
The memory system: per-PU-banked L1 I/D caches (64 KB for 4 PUs,
128 KB for 8), a 32-entry-per-PU ARB with a 256-entry synchronisation
table, a 4 MB L2 with 12-cycle hits, and 58-cycle main memory.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class ForwardPolicy(enum.Enum):
    """When a task forwards an inter-task register value.

    * ``SCHEDULE`` — at the producing instruction when it is a static
      release point (the compiler's dead register analysis), else at
      task completion.  The paper's compiled behaviour.
    * ``EAGER`` — always at the producing instruction (oracle last-def
      knowledge; an upper bound used in ablations).
    * ``LAZY`` — always at task completion (no communication
      scheduling; a lower bound used in ablations).
    """

    SCHEDULE = "schedule"
    EAGER = "eager"
    LAZY = "lazy"


@dataclass(frozen=True)
class CacheConfig:
    """One cache level: capacity in bytes, associativity, line size."""

    size_bytes: int
    assoc: int
    line_bytes: int
    hit_latency: int

    @property
    def sets(self) -> int:
        """Number of sets."""
        return max(1, self.size_bytes // (self.assoc * self.line_bytes))


@dataclass(frozen=True)
class SimConfig:
    """Full Multiscalar machine configuration."""

    n_pus: int = 4
    out_of_order: bool = True
    issue_width: int = 2
    fetch_width: int = 2
    rob_size: int = 16
    issue_list_size: int = 8
    int_units: int = 2
    fp_units: int = 1
    branch_units: int = 1
    mem_units: int = 1

    #: pipeline-fill cycles charged at every task start (Section 3.2
    #: assumes a total task overhead of ~2 cycles)
    task_start_overhead: int = 1
    #: commit cycles charged at every task retire
    task_end_overhead: int = 1
    #: extra fetch bubble after a mispredicted intra-task branch
    branch_mispredict_penalty: int = 4
    #: cycles between a task resolving its successor and the sequencer
    #: redirecting after an inter-task misprediction
    task_mispredict_redirect: int = 1

    #: register ring: values per cycle per PU of egress bandwidth
    ring_bandwidth: int = 2
    #: extra cycles per ring hop beyond the first (adjacent PUs bypass
    #: in the same cycle)
    ring_hop_latency: int = 1
    forward_policy: ForwardPolicy = ForwardPolicy.SCHEDULE
    #: extra cycles modelling a path-dependent release instruction
    release_lag: int = 2

    #: ARB lookup latency (cross-task store-to-load forwarding)
    arb_latency: int = 2
    #: ARB entries per PU; speculative memory operations beyond this
    #: stall until the task becomes non-speculative (Section 2.4.1:
    #: "large tasks may cause the ARB to overflow"). 0 disables.
    arb_entries_per_pu: int = 32
    #: same-task store-to-load forwarding latency
    stlf_latency: int = 1
    #: memory synchronisation table entries (0 disables syncing)
    sync_table_size: int = 256

    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 2, 32, 1)
    )
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 2, 32, 1)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(4 * 1024 * 1024, 2, 32, 12)
    )
    memory_latency: int = 58

    #: word size in bytes used to map word addresses to cache lines
    word_bytes: int = 4

    #: safety valve: abort runs exceeding this many cycles
    max_cycles: int = 50_000_000

    #: cycle-loop implementation: "fast" (event-driven, skips
    #: quiescent spans), "batched" (per-PU event spans + cohort
    #: batching over cells sharing a workload), or "reference"
    #: (uniform per-cycle tick).  Results are bit-identical; the
    #: reference engine is the oracle the others are validated
    #: against.
    engine: str = "fast"

    #: optional machine description: a preset name (resolved through
    #: :mod:`repro.machines.registry` at construction) or a
    #: :class:`~repro.machines.MachineSpec`.  When set, the spec is
    #: authoritative: ``n_pus`` becomes the spec's PU count, the L1s
    #: scale with it, the spec's topology overrides (ring hop
    #: latency/bandwidth, ARB shape) replace the global fields, and
    #: per-PU profiles override the global widths/unit counts inside
    #: the engines.  A spec whose profiles inherit everything is
    #: bit-identical to this config with ``machine=None``.
    machine: object = None

    def __post_init__(self) -> None:
        if self.machine is not None:
            from repro.machines import resolve_machine

            spec = resolve_machine(self.machine)
            object.__setattr__(self, "machine", spec)
            object.__setattr__(self, "n_pus", spec.n_pus)
            l1_bytes = 16 * 1024 * spec.n_pus
            object.__setattr__(
                self, "l1d", replace(self.l1d, size_bytes=l1_bytes)
            )
            object.__setattr__(
                self, "l1i", replace(self.l1i, size_bytes=l1_bytes)
            )
            for attr in ("ring_bandwidth", "ring_hop_latency",
                         "arb_entries_per_pu", "arb_latency"):
                value = getattr(spec, attr)
                if value is not None:
                    object.__setattr__(self, attr, value)
        if self.engine not in ("fast", "batched", "reference"):
            raise ValueError(
                "engine must be 'fast', 'batched' or 'reference', "
                f"got {self.engine!r}"
            )
        if self.n_pus < 1:
            raise ValueError("n_pus must be >= 1")
        if self.issue_width < 1 or self.fetch_width < 1:
            raise ValueError("issue/fetch width must be >= 1")
        if self.rob_size < 1 or self.issue_list_size < 1:
            raise ValueError("window sizes must be >= 1")

    def scaled_for_pus(self, n_pus: int) -> "SimConfig":
        """This configuration with ``n_pus`` PUs and paper-scaled L1s.

        The paper doubles L1 capacity from 64 KB (4 PUs) to 128 KB
        (8 PUs); capacities scale linearly with PU count here.
        """
        l1_bytes = 16 * 1024 * n_pus
        return replace(
            self,
            n_pus=n_pus,
            l1d=replace(self.l1d, size_bytes=l1_bytes),
            l1i=replace(self.l1i, size_bytes=l1_bytes),
        )
