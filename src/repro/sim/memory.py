"""Cache hierarchy model: L1 I/D, unified L2, main memory.

Set-associative LRU caches with configurable geometry
(:class:`~repro.sim.config.CacheConfig`).  Latency-only: the model
returns access latency and updates replacement state; bandwidth and
bank conflicts are not modelled (noted as a substitution in
DESIGN.md — the paper's banked caches have one-cycle hits, so the
first-order effect on task-shape comparisons is the hit/miss pattern,
which this model captures).
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.config import CacheConfig, SimConfig


class Cache:
    """A single set-associative LRU cache level.

    Sets are stored sparsely (dict keyed by set index): an untouched
    set is indistinguishable from an empty one, and a 4 MB L2 has 64K
    sets of which a run touches a few hundred — allocating them all
    eagerly used to dominate machine construction time.
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.sets: Dict[int, List[int]] = {}
        self._n_sets = config.sets
        self._assoc = config.assoc
        self.hits = 0
        self.misses = 0

    def _locate(self, line_addr: int) -> int:
        return line_addr % self._n_sets

    def access(self, line_addr: int) -> bool:
        """Touch ``line_addr``; return True on hit (LRU updated)."""
        index = line_addr % self._n_sets
        ways = self.sets.get(index)
        if ways is None:
            ways = self.sets[index] = []
        elif line_addr in ways:
            if ways[-1] != line_addr:
                ways.remove(line_addr)
                ways.append(line_addr)
            self.hits += 1
            return True
        self.misses += 1
        ways.append(line_addr)
        if len(ways) > self._assoc:
            ways.pop(0)
        return False

    @property
    def accesses(self) -> int:
        """Total accesses so far."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss fraction (0.0 when unused)."""
        total = self.accesses
        return self.misses / total if total else 0.0


class MemoryHierarchy:
    """L1 I + L1 D backed by a unified L2 and main memory."""

    def __init__(self, config: SimConfig) -> None:
        self.config = config
        self.l1d = Cache(config.l1d, "l1d")
        self.l1i = Cache(config.l1i, "l1i")
        self.l2 = Cache(config.l2, "l2")

    def _line_of_word(self, word_addr: int, line_bytes: int) -> int:
        words_per_line = max(1, line_bytes // self.config.word_bytes)
        return word_addr // words_per_line

    def data_access(self, word_addr: int) -> int:
        """Latency of a data access at word address ``word_addr``."""
        line = self._line_of_word(word_addr, self.config.l1d.line_bytes)
        if self.l1d.access(line):
            return self.config.l1d.hit_latency
        if self.l2.access(line):
            return self.config.l1d.hit_latency + self.config.l2.hit_latency
        return (
            self.config.l1d.hit_latency
            + self.config.l2.hit_latency
            + self.config.memory_latency
        )

    def inst_access(self, pc: int) -> int:
        """Latency of an instruction fetch at address ``pc``."""
        line = self._line_of_word(pc, self.config.l1i.line_bytes)
        if self.l1i.access(line):
            return self.config.l1i.hit_latency
        if self.l2.access(line):
            return self.config.l1i.hit_latency + self.config.l2.hit_latency
        return (
            self.config.l1i.hit_latency
            + self.config.l2.hit_latency
            + self.config.memory_latency
        )

    def stats(self) -> Dict[str, float]:
        """Hit/miss counters for reporting."""
        return {
            "l1d_accesses": self.l1d.accesses,
            "l1d_miss_rate": self.l1d.miss_rate,
            "l1i_accesses": self.l1i.accesses,
            "l1i_miss_rate": self.l1i.miss_rate,
            "l2_accesses": self.l2.accesses,
            "l2_miss_rate": self.l2.miss_rate,
        }
