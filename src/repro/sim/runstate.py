"""Per-run state shared by the PUs and the sequencer.

The static per-instruction arrays (operand producers, memory
producers, latencies, release points, gshare outcomes) live in the
stream's shared :class:`~repro.sim.packed.PackedTrace` — built once
per ``(trace, partition)`` and aliased here, so constructing a
machine costs O(tasks), not O(trace).  Only the mutable completion /
forward-time arrays the cycle loop updates are allocated per run.
Squashes reset the mutable slices of the affected dynamic task spans.
"""

from __future__ import annotations

from typing import List, Optional

from repro.compiler.regcomm import ReleaseAnalysis
from repro.sim.config import ForwardPolicy, SimConfig
from repro.sim.packed import (
    OPCLASS_BRANCH,
    OPCLASS_FP,
    OPCLASS_INT,
    OPCLASS_MEM,
)
from repro.sim.taskstream import TaskStream

__all__ = [
    "OPCLASS_BRANCH",
    "OPCLASS_FP",
    "OPCLASS_INT",
    "OPCLASS_MEM",
    "RunState",
]


class RunState:
    """All per-run arrays, indexed by trace position."""

    def __init__(
        self,
        stream: TaskStream,
        config: SimConfig,
        release: Optional[ReleaseAnalysis] = None,
    ) -> None:
        self.stream = stream
        self.config = config

        if config.forward_policy is ForwardPolicy.SCHEDULE and release is None:
            release = ReleaseAnalysis(stream.partition)
        self.release_analysis = release

        packed = stream.packed
        self.packed = packed
        n = packed.n

        # ---- static arrays: aliases into the shared packed trace ----------
        self.opcls = packed.opcls
        self.latency = packed.latency
        self.is_load = packed.is_load
        self.is_store = packed.is_store
        self.is_mem = packed.is_mem
        self.is_cond_branch = packed.is_cond_branch
        self.pc = packed.pc
        self.addr = packed.addr
        self.block_start = packed.block_start
        self.producers = packed.producers
        self.issue_simple = packed.issue_simple
        self.mem_producer = packed.mem_producer
        self.task_seq = packed.task_seq
        self.gshare_mispred = packed.gshare_mispred
        self.has_write = packed.has_write
        self.has_remote_consumer = packed.has_remote_consumer
        self.cross_consumer = packed.cross_consumer
        self.consumer_seqs = packed.consumer_seqs
        self.release_now = packed.release_now(config.forward_policy, release)

        # ---- mutable arrays ------------------------------------------------
        #: completion cycle per executed instruction (-1 = not executed)
        self.complete: List[int] = [-1] * n
        #: cycle the produced register value is available on the ring
        self.forward: List[int] = [-1] * n
        #: squash incarnation per dynamic task
        self.generation: List[int] = [0] * len(stream.tasks)
        #: PU that last executed each dynamic task
        self.pu_of_seq: List[int] = [-1] * len(stream.tasks)

    def clear_span(self, seq: int) -> None:
        """Reset execution state of dynamic task ``seq`` after a squash."""
        dyn_task = self.stream.tasks[seq]
        start, end = dyn_task.start, dyn_task.end
        self.complete[start:end] = [-1] * (end - start)
        self.forward[start:end] = [-1] * (end - start)
        self.generation[seq] += 1

    @property
    def gshare_accuracy(self) -> float:
        """Program-order intra-task branch prediction accuracy."""
        return self.packed.gshare_accuracy

    @property
    def branch_count(self) -> int:
        """Dynamic conditional branches in the trace."""
        return self.packed.gshare_predictions
