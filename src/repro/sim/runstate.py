"""Preprocessed per-run state shared by the PUs and the sequencer.

Built once per (trace, partition, config): static per-instruction
arrays (operand producers, memory producers, latencies, release
points, gshare outcomes) plus the mutable completion / forward-time
arrays the cycle loop updates.  Squashes reset the mutable slices of
the affected dynamic task spans.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.compiler.regcomm import ReleaseAnalysis
from repro.ir.instructions import OpClass, Opcode
from repro.predict import GsharePredictor
from repro.sim.config import ForwardPolicy, SimConfig
from repro.sim.taskstream import TaskStream

OPCLASS_INT = 0
OPCLASS_FP = 1
OPCLASS_MEM = 2
OPCLASS_BRANCH = 3

_OPCLASS_ID = {
    OpClass.INT: OPCLASS_INT,
    OpClass.FP: OPCLASS_FP,
    OpClass.MEM: OPCLASS_MEM,
    OpClass.BRANCH: OPCLASS_BRANCH,
}


class RunState:
    """All per-run arrays, indexed by trace position."""

    def __init__(
        self,
        stream: TaskStream,
        config: SimConfig,
        release: Optional[ReleaseAnalysis] = None,
    ) -> None:
        self.stream = stream
        self.config = config
        trace = stream.trace
        n = len(trace)

        if config.forward_policy is ForwardPolicy.SCHEDULE and release is None:
            release = ReleaseAnalysis(stream.partition)
        self.release_analysis = release

        # ---- static arrays -------------------------------------------------
        self.opcls: List[int] = [0] * n
        self.latency: List[int] = [0] * n
        self.is_load = bytearray(n)
        self.is_store = bytearray(n)
        self.is_cond_branch = bytearray(n)
        self.pc: List[int] = [0] * n
        self.addr: List[int] = [0] * n
        self.block_start = bytearray(n)
        self.producers: List[Tuple[int, ...]] = [()] * n
        self.mem_producer: List[int] = [-1] * n
        self.task_seq: List[int] = [0] * n
        self.gshare_mispred = bytearray(n)
        self.release_now = bytearray(n)  # forward at completion (no lag)
        self.has_write = bytearray(n)
        self.has_remote_consumer = bytearray(n)

        self.gshare = GsharePredictor()

        for start_idx, _block in trace.block_entries:
            if start_idx < n:
                self.block_start[start_idx] = 1

        for seq, dyn_task in enumerate(stream.tasks):
            for i in range(dyn_task.start, dyn_task.end):
                self.task_seq[i] = seq

        last_writer: Dict[str, int] = {}
        last_store: Dict[int, int] = {}
        policy = config.forward_policy
        absorbed = stream.absorbed_flags

        for i, dyn in enumerate(trace.insts):
            op = dyn.op
            self.opcls[i] = _OPCLASS_ID[op.op_class]
            self.latency[i] = op.latency
            self.pc[i] = dyn.pc
            if op is Opcode.LOAD:
                self.is_load[i] = 1
                assert dyn.addr is not None
                self.addr[i] = dyn.addr
                self.mem_producer[i] = last_store.get(dyn.addr, -1)
            elif op is Opcode.STORE:
                self.is_store[i] = 1
                assert dyn.addr is not None
                self.addr[i] = dyn.addr
                last_store[dyn.addr] = i
            elif op.is_branch:
                self.is_cond_branch[i] = 1
                assert dyn.taken is not None
                if self.gshare.update(dyn.pc, dyn.taken):
                    self.gshare_mispred[i] = 1

            prods = tuple(
                sorted({last_writer[r] for r in dyn.reads if r in last_writer})
            )
            self.producers[i] = prods
            if dyn.write is not None:
                self.has_write[i] = 1
                last_writer[dyn.write] = i
                if policy is ForwardPolicy.EAGER:
                    self.release_now[i] = 1
                elif policy is ForwardPolicy.SCHEDULE:
                    if not absorbed[i]:
                        task = stream.tasks[self.task_seq[i]].task
                        assert release is not None
                        if dyn.block in task.blocks and release.is_release(
                            task, dyn.block, dyn.iidx, dyn.write
                        ):
                            self.release_now[i] = 1

        for i, prods in enumerate(self.producers):
            seq = self.task_seq[i]
            for p in prods:
                if self.task_seq[p] != seq:
                    self.has_remote_consumer[p] = 1

        # ---- mutable arrays ------------------------------------------------
        #: completion cycle per executed instruction (-1 = not executed)
        self.complete: List[int] = [-1] * n
        #: cycle the produced register value is available on the ring
        self.forward: List[int] = [-1] * n
        #: squash incarnation per dynamic task
        self.generation: List[int] = [0] * len(stream.tasks)
        #: PU that last executed each dynamic task
        self.pu_of_seq: List[int] = [-1] * len(stream.tasks)

    def clear_span(self, seq: int) -> None:
        """Reset execution state of dynamic task ``seq`` after a squash."""
        dyn_task = self.stream.tasks[seq]
        for i in range(dyn_task.start, dyn_task.end):
            self.complete[i] = -1
            self.forward[i] = -1
        self.generation[seq] += 1

    @property
    def gshare_accuracy(self) -> float:
        """Program-order intra-task branch prediction accuracy."""
        return self.gshare.accuracy

    @property
    def branch_count(self) -> int:
        """Dynamic conditional branches in the trace."""
        return self.gshare.predictions
