"""One Multiscalar processing unit (Section 4.2 configuration).

Each PU executes one dynamic task at a time: it fetches the task's
instructions in (dynamic) program order at ``fetch_width`` per cycle,
holds them in a ``rob_size`` window, and issues up to ``issue_width``
ready instructions per cycle subject to the issue-list depth, the
functional unit mix, and — in in-order mode — strict program order.
Memory operations issue in program order within the task (the paper's
single memory unit), which keeps intra-task memory semantics exact.

The PU charges every occupied cycle to a Figure-2 category in a local
breakdown; the machine merges it on retire or converts the whole
occupancy into a misspeculation penalty on squash.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.sim.breakdown import StallReason
from repro.sim.config import SimConfig
from repro.sim.runstate import (
    OPCLASS_BRANCH,
    OPCLASS_FP,
    OPCLASS_INT,
    OPCLASS_MEM,
    RunState,
)
from repro.sim.taskstream import DynTask

_NEVER = 1 << 60


class ProcessingUnit:
    """Execution state of one PU."""

    def __init__(self, index: int, config: SimConfig, state: RunState) -> None:
        self.index = index
        self.config = config
        self.state = state
        self.reset_idle()

    # ------------------------------------------------------------ lifecycle

    def reset_idle(self) -> None:
        """Return to the idle state (no task assigned)."""
        self.arb_used = 0
        self.dyn_task: Optional[DynTask] = None
        self.seq = -1
        self.wrong = False
        self.assign_cycle = -1
        self.fetch_ptr = 0
        self.fetch_resume = 0
        self.next_mem_ptr = 0
        self.pending_branch = -1
        # window entries: [trace_idx, fetch_cycle]
        self.window: List[List[int]] = []
        self.unissued: List[List[int]] = []
        self.in_flight: List[Tuple[int, int]] = []  # (complete_cycle, idx)
        self.remaining = 0
        self.done = False
        self.done_cycle = -1
        self.retiring = False
        self.local_counts: Dict[StallReason, int] = {}

    @property
    def idle(self) -> bool:
        """True when no task (real or wrong-path) occupies this PU."""
        return self.dyn_task is None and not self.wrong

    def assign(self, dyn_task: DynTask, cycle: int) -> None:
        """Start executing ``dyn_task`` at ``cycle``."""
        self.reset_idle()
        self.dyn_task = dyn_task
        self.seq = dyn_task.seq
        self.assign_cycle = cycle
        self.fetch_ptr = dyn_task.start
        self.next_mem_ptr = dyn_task.start
        self.fetch_resume = cycle + self.config.task_start_overhead
        self.remaining = dyn_task.length
        state = self.state
        state.pu_of_seq[dyn_task.seq] = self.index

    def assign_wrong(self, cycle: int) -> None:
        """Occupy the PU with wrong-path work (after a task mispredict)."""
        self.reset_idle()
        self.wrong = True
        self.assign_cycle = cycle

    def charge(self, reason: StallReason, cycles: int = 1) -> None:
        """Account ``cycles`` to ``reason`` in the task-local breakdown."""
        self.local_counts[reason] = self.local_counts.get(reason, 0) + cycles

    # ---------------------------------------------------------- completions

    def drain_completions(self, cycle: int) -> List[int]:
        """Pop instructions completing at ``cycle``; update run state.

        Returns completed store indices (the machine checks them for
        memory dependence violations).
        """
        state = self.state
        config = self.config
        completed_stores: List[int] = []
        while self.in_flight and self.in_flight[0][0] <= cycle:
            _, idx = heapq.heappop(self.in_flight)
            state.complete[idx] = cycle
            self.remaining -= 1
            # Remove from window.
            for pos, entry in enumerate(self.window):
                if entry[0] == idx:
                    del self.window[pos]
                    break
            if state.has_write[idx]:
                if state.release_now[idx]:
                    self._schedule_forward(idx, cycle)
                elif config.forward_policy.value == "schedule":
                    self._schedule_forward(idx, cycle + config.release_lag)
                # LAZY: forwarded in bulk at task completion.
            if state.is_store[idx]:
                completed_stores.append(idx)
            if idx == self.pending_branch:
                self.pending_branch = -1
                self.fetch_resume = cycle + config.branch_mispredict_penalty
        if (
            not self.done
            and self.dyn_task is not None
            and self.remaining == 0
            and self.fetch_ptr >= self.dyn_task.end
        ):
            self.done = True
            self.done_cycle = cycle
            if config.forward_policy.value == "lazy":
                self._forward_all_writes(cycle)
        return completed_stores

    def _schedule_forward(self, idx: int, earliest: int) -> None:
        state = self.state
        if state.forward[idx] >= 0:
            return
        if state.has_remote_consumer[idx]:
            state.forward[idx] = self.machine_ring_slot(earliest)
        else:
            state.forward[idx] = earliest

    def machine_ring_slot(self, earliest: int) -> int:
        """Reserve a ring egress slot at or after ``earliest``."""
        egress = self._egress
        bandwidth = self.config.ring_bandwidth
        cycle = earliest
        while egress.get(cycle, 0) >= bandwidth:
            cycle += 1
        egress[cycle] = egress.get(cycle, 0) + 1
        return cycle

    def attach_egress(self, egress: Dict[int, int]) -> None:
        """Give the PU its ring egress schedule (owned by the machine)."""
        self._egress = egress

    def _forward_all_writes(self, cycle: int) -> None:
        state = self.state
        assert self.dyn_task is not None
        for i in range(self.dyn_task.start, self.dyn_task.end):
            if state.has_write[i] and state.forward[i] < 0:
                self._schedule_forward(i, cycle)

    # ---------------------------------------------------------------- fetch

    def fetch(self, cycle: int) -> None:
        """Bring up to ``fetch_width`` instructions into the window."""
        if self.dyn_task is None or self.done:
            return
        if cycle < self.fetch_resume or self.pending_branch >= 0:
            return
        state = self.state
        config = self.config
        end = self.dyn_task.end
        fetched = 0
        while (
            fetched < config.fetch_width
            and self.fetch_ptr < end
            and len(self.window) < config.rob_size
        ):
            idx = self.fetch_ptr
            if state.block_start[idx]:
                latency = self.icache_access(state.pc[idx])
                if latency > config.l1i.hit_latency:
                    # Miss: stall the front end for the extra cycles,
                    # then this (already-fetched) line streams in.
                    self.fetch_resume = cycle + (latency - config.l1i.hit_latency)
            entry = [idx, cycle]
            self.window.append(entry)
            self.unissued.append(entry)
            self.fetch_ptr = idx + 1
            fetched += 1
            if state.is_cond_branch[idx] and state.gshare_mispred[idx]:
                # Wrong-path fetch: stall until the branch resolves.
                self.pending_branch = idx
                self.fetch_resume = _NEVER
                break
            if self.fetch_resume > cycle:
                break
        if (
            not self.done
            and self.remaining == 0
            and self.fetch_ptr >= end
            and not self.window
        ):
            self.done = True
            self.done_cycle = cycle
            if config.forward_policy.value == "lazy":
                self._forward_all_writes(cycle)

    def icache_access(self, pc: int) -> int:
        """Overridden by the machine with the shared hierarchy."""
        return self.config.l1i.hit_latency

    # ---------------------------------------------------------------- issue

    def issue(self, cycle: int, machine) -> Tuple[int, Optional[StallReason]]:
        """Issue ready instructions; return (#issued, stall reason).

        The stall reason reflects the oldest unissued instruction when
        nothing issued this cycle (None when something issued or there
        is nothing to issue).
        """
        if self.dyn_task is None or self.done or not self.unissued:
            return 0, None
        config = self.config
        state = self.state
        issued = 0
        fu_budget = {
            OPCLASS_INT: config.int_units,
            OPCLASS_FP: config.fp_units,
            OPCLASS_MEM: config.mem_units,
            OPCLASS_BRANCH: config.branch_units,
        }
        first_block: Optional[StallReason] = None
        issued_entries: List[List[int]] = []

        candidates = (
            self.unissued
            if not config.out_of_order
            else self.unissued[: config.issue_list_size]
        )
        for entry in candidates:
            if issued >= config.issue_width:
                break
            idx, fetch_cycle = entry
            if fetch_cycle >= cycle:
                # Decode: not issuable the cycle it was fetched.
                if first_block is None:
                    first_block = StallReason.FETCH
                if not config.out_of_order:
                    break
                continue
            reason = self._blocking_reason(idx, cycle, machine)
            if reason is not None:
                if first_block is None:
                    first_block = reason
                if not config.out_of_order:
                    break
                continue
            opcls = state.opcls[idx]
            if fu_budget[opcls] <= 0:
                if first_block is None:
                    first_block = StallReason.USEFUL
                if not config.out_of_order:
                    break
                continue
            fu_budget[opcls] -= 1
            latency = self._issue_latency(idx, cycle, machine)
            heapq.heappush(self.in_flight, (cycle + latency, idx))
            issued_entries.append(entry)
            issued += 1
            if state.is_load[idx] or state.is_store[idx]:
                self.next_mem_ptr = idx + 1
                if self.seq != machine.retire_seq:
                    self.arb_used += 1

        for entry in issued_entries:
            self.unissued.remove(entry)
        if issued:
            return issued, None
        return 0, first_block

    def _blocking_reason(
        self, idx: int, cycle: int, machine
    ) -> Optional[StallReason]:
        """Why can't ``idx`` issue now?  ``None`` when it can."""
        state = self.state
        seq = self.seq
        n_pus = self.config.n_pus
        hop_latency = self.config.ring_hop_latency
        my_pu = self.index
        for p in state.producers[idx]:
            pseq = state.task_seq[p]
            if pseq == seq:
                done = state.complete[p]
                if done < 0 or done > cycle:
                    return StallReason.INTRA_DEP
            else:
                fwd = state.forward[p]
                if fwd < 0:
                    return StallReason.INTER_COMM
                prod_pu = state.pu_of_seq[pseq]
                hops = (my_pu - prod_pu) % n_pus if prod_pu >= 0 else 1
                extra = max(0, hops - 1) * hop_latency
                if fwd + extra > cycle:
                    return StallReason.INTER_COMM
        if state.is_load[idx] or state.is_store[idx]:
            # Program-order memory issue within the task.
            mem_ptr = self._oldest_unissued_mem(idx)
            if mem_ptr != idx:
                return StallReason.MEMORY
            # ARB capacity: a speculative task with a full ARB stalls
            # its memory operations until it becomes the head.
            capacity = self.config.arb_entries_per_pu
            if (
                capacity > 0
                and self.arb_used >= capacity
                and self.seq != machine.retire_seq
            ):
                return StallReason.MEMORY
            if state.is_load[idx]:
                return self._load_block_reason(idx, cycle, machine)
        return None

    def _oldest_unissued_mem(self, upto: int) -> int:
        """Trace index of the oldest unissued memory op (<= ``upto``)."""
        state = self.state
        for entry in self.unissued:
            i = entry[0]
            if i > upto:
                break
            if state.is_load[i] or state.is_store[i]:
                return i
        return upto

    def _load_block_reason(
        self, idx: int, cycle: int, machine
    ) -> Optional[StallReason]:
        state = self.state
        p = state.mem_producer[idx]
        if p < 0:
            return None
        pseq = state.task_seq[p]
        if pseq == self.seq:
            done = state.complete[p]
            if done < 0 or done > cycle:
                return StallReason.MEMORY
            return None
        if state.complete[p] >= 0 and state.complete[p] <= cycle:
            return None  # ARB forwards from the earlier task
        if machine.is_synchronised(p, idx) and self.seq != machine.retire_seq:
            return StallReason.SYNC_WAIT
        return None  # speculate

    def _issue_latency(self, idx: int, cycle: int, machine) -> int:
        state = self.state
        config = self.config
        if state.is_load[idx]:
            p = state.mem_producer[idx]
            if p >= 0:
                pseq = state.task_seq[p]
                if pseq == self.seq:
                    return config.stlf_latency
                if state.complete[p] >= 0:
                    return config.arb_latency
                # Speculative load: may be violated when p executes.
                machine.register_speculative_load(p, idx, self.seq)
            return max(
                config.arb_latency, machine.data_access(state.addr[idx])
            )
        if state.is_store[idx]:
            return state.latency[idx]
        return state.latency[idx]
