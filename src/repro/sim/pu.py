"""One Multiscalar processing unit (Section 4.2 configuration).

Each PU executes one dynamic task at a time: it fetches the task's
instructions in (dynamic) program order at ``fetch_width`` per cycle,
holds them in a ``rob_size`` window, and issues up to ``issue_width``
ready instructions per cycle subject to the issue-list depth, the
functional unit mix, and — in in-order mode — strict program order.
Memory operations issue in program order within the task (the paper's
single memory unit), which keeps intra-task memory semantics exact.

The PU charges every occupied cycle to a Figure-2 category in a local
breakdown; the machine merges it on retire or converts the whole
occupancy into a misspeculation penalty on squash.

The hot paths (``issue``/``fetch``/``drain_completions``) index the
stream's packed trace arrays — flat ints, no ``DynInst`` attribute
chasing — and the per-task stall accounting is a dense int list
(slotted per :data:`~repro.sim.breakdown.REASONS`), so a cycle of
bookkeeping costs a couple of list indexings instead of enum-keyed
dict updates.

For the event-driven engine the PU also exposes
:meth:`next_event_cycle`: after a globally quiescent cycle it reports
the earliest future cycle at which this PU could act (next completion,
fetch resume, ring-forward arrival, task-start boundary) plus the
stall category it keeps charging until then.  ``issue`` records the
two facts the probe needs as it scans — the blocking reason of the
oldest unissued instruction and the earliest ring-forward arrival
among blocked candidates — so the probe itself does no rescanning.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.sim.breakdown import REASON_INDEX, StallReason
from repro.sim.config import SimConfig
from repro.sim.runstate import (
    OPCLASS_BRANCH,
    OPCLASS_FP,
    OPCLASS_INT,
    OPCLASS_MEM,
    RunState,
)
from repro.sim.taskstream import DynTask

_NEVER = 1 << 60

_N_REASONS = len(REASON_INDEX)
_R_FETCH = REASON_INDEX[StallReason.FETCH]
_R_LOAD_IMBALANCE = REASON_INDEX[StallReason.LOAD_IMBALANCE]
_R_TASK_START = REASON_INDEX[StallReason.TASK_START]
_R_USEFUL = REASON_INDEX[StallReason.USEFUL]


class ProcessingUnit:
    """Execution state of one PU."""

    def __init__(self, index: int, config: SimConfig, state: RunState,
                 profile=None) -> None:
        self.index = index
        self.config = config
        self.state = state
        self.profile = profile
        forward_policy = config.forward_policy.value
        self._schedule_fp = forward_policy == "schedule"
        self._lazy_fp = forward_policy == "lazy"
        # Per-PU profile overrides (heterogeneous machines): a None
        # profile — or a profile field left None — inherits the global
        # config value, so homogeneous machines build exactly the
        # constants they always did.
        def _of(attr, default):
            if profile is None:
                return default
            value = getattr(profile, attr)
            return default if value is None else value

        issue_width = _of("issue_width", config.issue_width)
        fetch_width = _of("fetch_width", config.fetch_width)
        # Extra execution latency per opclass (OPCLASS_* order); the
        # all-zeros default adds nothing on the issue paths below.
        lat_extra = (
            tuple(profile.lat_extra) if profile is not None else (0, 0, 0, 0)
        )
        # Per-run constants for the hot methods, bundled so each call
        # rebinds them with one attribute load and a tuple unpack
        # instead of ~20 attribute loads (the prologue cost dominates
        # short calls).  All referenced objects are identity-stable
        # for the lifetime of the run.
        self._fu_budget = [
            _of("int_units", config.int_units),
            _of("fp_units", config.fp_units),
            _of("mem_units", config.mem_units),
            _of("branch_units", config.branch_units),
        ]
        self._issue_consts = (
            state.opcls,
            state.is_load,
            state.is_mem,
            state.issue_simple,
            state.producers,
            state.task_seq,
            state.complete,
            state.forward,
            state.pu_of_seq,
            state.mem_producer,
            state.latency,
            state.addr,
            config.out_of_order,
            issue_width,
            config.issue_list_size,
            config.n_pus,
            config.ring_hop_latency,
            config.arb_entries_per_pu,
            config.arb_latency,
            config.stlf_latency,
            index,
            lat_extra,
        )
        self._fetch_consts = (
            state.block_start,
            state.is_cond_branch,
            state.gshare_mispred,
            state.is_mem,
            state.pc,
            fetch_width,
            config.rob_size,
            config.l1i.hit_latency,
            config.out_of_order,
            config.issue_list_size,
        )
        self._drain_consts = (
            state.complete,
            state.has_write,
            state.release_now,
            state.is_store,
            state.cross_consumer,
            config.release_lag,
            config.branch_mispredict_penalty,
        )
        #: optional telemetry collector (set by the machine, survives
        #: reset_idle; consulted only on the rare mispredict path)
        self.tracer = None
        self.reset_idle()

    # ------------------------------------------------------------ lifecycle

    def reset_idle(self) -> None:
        """Return to the idle state (no task assigned)."""
        self.arb_used = 0
        self.dyn_task: Optional[DynTask] = None
        self.seq = -1
        self.wrong = False
        self.assign_cycle = -1
        self.fetch_ptr = 0
        self.fetch_resume = 0
        self.next_mem_ptr = 0
        self.pending_branch = -1
        #: occupancy of the reorder buffer (fetched, not yet completed)
        self.rob_count = 0
        #: window entries awaiting issue: (trace_idx, fetch_cycle)
        self.unissued: List[Tuple[int, int]] = []
        #: fetched memory-op trace indices in program order; the entry
        #: at ``mem_head`` is the oldest unissued one (the only memory
        #: op allowed to issue — an O(1) check instead of a window scan)
        self.unissued_mem: List[int] = []
        self.mem_head = 0
        self.in_flight: List[Tuple[int, int]] = []  # (complete_cycle, idx)
        self.remaining = 0
        self.done = False
        self.done_cycle = -1
        #: cycle this task's first instruction issued (-1: none yet)
        self.first_issue = -1
        self.retiring = False
        #: per-task stall accounting, slotted per breakdown.REASONS
        self.local_counts: List[int] = [0] * _N_REASONS
        #: earliest ring-forward arrival among blocked candidates, as
        #: observed by the last ``issue`` call (event-probe input)
        self.issue_wake = _NEVER
        #: blocking reason of the oldest unissued instruction, as
        #: observed by the last ``issue`` call (event-probe input)
        self.last_block: Optional[StallReason] = None
        #: dense slot of ``last_block`` (valid when it is not None)
        self.last_slot = _R_FETCH
        #: trace index one past this task's span (0 when idle); lets
        #: the machine pre-test fetchability without touching dyn_task
        self.fetch_end = 0
        #: machine mutation version at which the last blocked ``issue``
        #: result was computed; -1 = stale.  While the machine's
        #: version matches and ``cycle < issue_wake``, a re-issue would
        #: provably reproduce (0, last_block), so the tick loop skips
        #: the call entirely.
        self.issue_cache_key = -1
        #: retire version at compute time, consulted only when the
        #: blocked result actually read ``machine.retire_seq`` (the
        #: ARB capacity gate) — most blocked results don't, so plain
        #: retires leave their memoization intact.
        self.issue_retire_key = -1
        self.retire_sensitive = False
        #: batched engine: first cycle this PU must be visited again
        #: (0 = always due; other engines ignore these three fields)
        self.span_wake = 0
        #: breakdown slot charged per skipped cycle since ``span_from``
        #: (-1 = no deferred charge open)
        self.span_slot = -1
        #: first cycle of the open deferred-charge span
        self.span_from = 0

    @property
    def idle(self) -> bool:
        """True when no task (real or wrong-path) occupies this PU."""
        return self.dyn_task is None and not self.wrong

    def assign(self, dyn_task: DynTask, cycle: int) -> None:
        """Start executing ``dyn_task`` at ``cycle``."""
        self.reset_idle()
        self.dyn_task = dyn_task
        self.seq = dyn_task.seq
        self.assign_cycle = cycle
        self.fetch_ptr = dyn_task.start
        self.fetch_end = dyn_task.end
        self.next_mem_ptr = dyn_task.start
        self.fetch_resume = cycle + self.config.task_start_overhead
        self.remaining = dyn_task.length
        self.state.pu_of_seq[dyn_task.seq] = self.index

    def assign_wrong(self, cycle: int) -> None:
        """Occupy the PU with wrong-path work (after a task mispredict)."""
        self.reset_idle()
        self.wrong = True
        self.assign_cycle = cycle

    def charge(self, reason: StallReason, cycles: int = 1) -> None:
        """Account ``cycles`` to ``reason`` in the task-local breakdown."""
        self.local_counts[REASON_INDEX[reason]] += cycles

    # ---------------------------------------------------------- completions

    def drain_completions(
        self, cycle: int
    ) -> Tuple[List[int], bool, bool, List[int]]:
        """Pop instructions finishing at ``cycle``; update run state.

        Returns ``(completed stores, popped anything, global event,
        cross-consumer completions)``: the machine checks the stores
        for memory dependence violations, uses the pop flag for
        activity detection, bumps its mutation version on a global
        event (a LAZY-policy task finishing — its writes forward in
        bulk), and invalidates the memoized issue results of exactly
        the consumer tasks of each cross-consumer completion.
        """
        completed_stores: List[int] = []
        cross_popped: List[int] = []
        in_flight = self.in_flight
        popped = False
        global_event = False
        if in_flight and in_flight[0][0] <= cycle:
            (
                complete,
                has_write,
                release_now,
                is_store,
                cross_consumer,
                release_lag,
                mispredict_penalty,
            ) = self._drain_consts
            heappop = heapq.heappop
            schedule_policy = self._schedule_fp
            popped = True
            self.issue_cache_key = -1
            while in_flight and in_flight[0][0] <= cycle:
                _, idx = heappop(in_flight)
                complete[idx] = cycle
                self.remaining -= 1
                self.rob_count -= 1
                if cross_consumer[idx]:
                    cross_popped.append(idx)
                if has_write[idx]:
                    if release_now[idx]:
                        self._schedule_forward(idx, cycle)
                    elif schedule_policy:
                        self._schedule_forward(idx, cycle + release_lag)
                    # LAZY: forwarded in bulk at task completion.
                if is_store[idx]:
                    completed_stores.append(idx)
                if idx == self.pending_branch:
                    self.pending_branch = -1
                    self.fetch_resume = cycle + mispredict_penalty
        if (
            not self.done
            and self.dyn_task is not None
            and self.remaining == 0
            and self.fetch_ptr >= self.dyn_task.end
        ):
            self.done = True
            self.done_cycle = cycle
            if self._lazy_fp:
                # Bulk forwarding is the only completion effect another
                # task's issue decision can observe here; under EAGER /
                # SCHEDULE every forward was already published at its
                # own drain (and targeted invalidation covered it).
                global_event = True
                self._forward_all_writes(cycle)
        return completed_stores, popped, global_event, cross_popped

    def _schedule_forward(self, idx: int, earliest: int) -> None:
        state = self.state
        if state.forward[idx] >= 0:
            return
        if state.has_remote_consumer[idx]:
            state.forward[idx] = self.machine_ring_slot(earliest)
        else:
            state.forward[idx] = earliest

    def machine_ring_slot(self, earliest: int) -> int:
        """Reserve a ring egress slot at or after ``earliest``."""
        egress = self._egress
        bandwidth = self.config.ring_bandwidth
        cycle = earliest
        while egress.get(cycle, 0) >= bandwidth:
            cycle += 1
        egress[cycle] = egress.get(cycle, 0) + 1
        return cycle

    def attach_egress(self, egress: Dict[int, int]) -> None:
        """Give the PU its ring egress schedule (owned by the machine)."""
        self._egress = egress

    def _forward_all_writes(self, cycle: int) -> None:
        state = self.state
        assert self.dyn_task is not None
        has_write = state.has_write
        forward = state.forward
        for i in range(self.dyn_task.start, self.dyn_task.end):
            if has_write[i] and forward[i] < 0:
                self._schedule_forward(i, cycle)

    # ---------------------------------------------------------------- fetch

    def fetch(self, cycle: int) -> bool:
        """Bring up to ``fetch_width`` instructions into the window.

        Returns True when anything was fetched (activity detection).
        """
        if self.dyn_task is None or self.done:
            return False
        if cycle < self.fetch_resume or self.pending_branch >= 0:
            return False
        (
            block_start,
            is_cond_branch,
            gshare_mispred,
            is_mem,
            pc,
            fetch_width,
            rob_size,
            l1i_hit_latency,
            out_of_order,
            issue_list_size,
        ) = self._fetch_consts
        end = self.dyn_task.end
        unissued = self.unissued
        unissued_mem = self.unissued_mem
        fetched = 0
        # Appending to the window invalidates a memoized blocked-issue
        # result only when the next scan would actually reach the new
        # entries: an in-order scan breaks at its first blocker, and an
        # out-of-order scan stops at ``issue_list_size`` candidates.
        # (A previously-empty window always invalidates: its memo is
        # the trivial "nothing to issue" result.)
        if out_of_order:
            if len(unissued) < issue_list_size:
                self.issue_cache_key = -1
        elif not unissued:
            self.issue_cache_key = -1
        while (
            fetched < fetch_width
            and self.fetch_ptr < end
            and self.rob_count < rob_size
        ):
            idx = self.fetch_ptr
            if block_start[idx]:
                latency = self.icache_access(pc[idx])
                if latency > l1i_hit_latency:
                    # Miss: stall the front end for the extra cycles,
                    # then this (already-fetched) line streams in.
                    self.fetch_resume = cycle + (latency - l1i_hit_latency)
            self.rob_count += 1
            unissued.append((idx, cycle))
            if is_mem[idx]:
                unissued_mem.append(idx)
            self.fetch_ptr = idx + 1
            fetched += 1
            if is_cond_branch[idx] and gshare_mispred[idx]:
                # Wrong-path fetch: stall until the branch resolves.
                self.pending_branch = idx
                self.fetch_resume = _NEVER
                if self.tracer is not None:
                    self.tracer.on_branch_mispredict(
                        self.seq, idx, cycle, self.index
                    )
                break
            if self.fetch_resume > cycle:
                break
        if (
            not self.done
            and self.remaining == 0
            and self.fetch_ptr >= end
            and self.rob_count == 0
        ):
            self.done = True
            self.done_cycle = cycle
            if self._lazy_fp:
                self._forward_all_writes(cycle)
        return fetched > 0

    def icache_access(self, pc: int) -> int:
        """Overridden by the machine with the shared hierarchy."""
        return self.config.l1i.hit_latency

    # ---------------------------------------------------------------- issue

    def issue(self, cycle: int, machine) -> Tuple[int, Optional[StallReason]]:
        """Issue ready instructions; return (#issued, stall reason).

        The stall reason reflects the oldest unissued instruction when
        nothing issued this cycle (None when something issued or there
        is nothing to issue).

        A blocked result is memoized against the machine's mutation
        version: until a completion with cross-task consumers, a
        retire, an assign, a squash, or this PU's own fetch/issue/drain
        occurs — and before any recorded ring-forward arrival
        (``issue_wake``) — re-running this computation cannot change
        its outcome, so the tick loop replays ``(0, last_block)``
        without calling in.  Results that touched the memory sync
        table's LRU are never memoized: the touch itself must re-run
        every cycle to keep the reference engine's eviction order.

        The per-candidate blocking analysis (register operands,
        program-order memory, ARB capacity, sync table) and the issue
        latency are fused inline: this loop runs millions of times per
        run and the call overhead of one helper per candidate used to
        dominate it.
        """
        self.issue_wake = _NEVER
        self.retire_sensitive = False
        unissued = self.unissued
        if self.dyn_task is None or self.done or not unissued:
            self.last_block = None
            self.issue_cache_key = machine._mut_version
            return 0, None
        issued = 0
        (
            opcls,
            is_load,
            is_mem,
            issue_simple,
            producers,
            task_seq,
            complete,
            forward,
            pu_of_seq,
            mem_producer,
            latency_of,
            addr,
            out_of_order,
            issue_width,
            issue_list_size,
            n_pus,
            hop_latency,
            arb_capacity,
            arb_latency,
            stlf_latency,
            my_pu,
            lat_extra,
        ) = self._issue_consts
        # FU budget slotted by opcode class (OPCLASS_*).
        budget = self._fu_budget.copy()
        first_block: Optional[StallReason] = None
        issued_pos: List[int] = []

        limit = len(unissued)
        if out_of_order and limit > issue_list_size:
            limit = issue_list_size
        in_flight = self.in_flight
        seq = self.seq
        at_head = seq == machine.retire_seq
        heappush = heapq.heappush
        unissued_mem = self.unissued_mem
        mem_head = self.mem_head
        issued_mem = 0
        issue_wake = _NEVER
        sync_block = False
        retire_sensitive = False

        for pos in range(limit):
            if issued >= issue_width:
                break
            idx, fetch_cycle = unissued[pos]
            if fetch_cycle >= cycle:
                # Decode: not issuable the cycle it was fetched.  Fetch
                # stamps never decrease along the window, so every
                # later candidate is decode-stalled too — stop scanning.
                if first_block is None:
                    first_block = StallReason.FETCH
                break
            if issue_simple[idx]:
                # No register operands and no memory semantics: after
                # the decode gate above, only the FU budget can stop
                # it.  Skips the whole dependence analysis below.
                cls = opcls[idx]
                if budget[cls] <= 0:
                    if first_block is None:
                        first_block = StallReason.USEFUL
                    if not out_of_order:
                        break
                    continue
                budget[cls] -= 1
                heappush(
                    in_flight,
                    (cycle + latency_of[idx] + lat_extra[cls], idx),
                )
                issued_pos.append(pos)
                issued += 1
                continue
            reason: Optional[StallReason] = None
            # Register operands.  A block on a scheduled ring
            # forward records the arrival cycle in ``issue_wake``
            # for the event probe — the only blocking condition
            # that clears at a known future cycle rather than at
            # another unit's event.
            for p in producers[idx]:
                pseq = task_seq[p]
                if pseq == seq:
                    done = complete[p]
                    if done < 0 or done > cycle:
                        reason = StallReason.INTRA_DEP
                        break
                else:
                    fwd = forward[p]
                    if fwd < 0:
                        reason = StallReason.INTER_COMM
                        break
                    prod_pu = pu_of_seq[pseq]
                    hops = (
                        (my_pu - prod_pu) % n_pus if prod_pu >= 0 else 1
                    )
                    if hops > 1:
                        fwd += (hops - 1) * hop_latency
                    if fwd > cycle:
                        if fwd < issue_wake:
                            issue_wake = fwd
                        reason = StallReason.INTER_COMM
                        break
            if reason is None and is_mem[idx]:
                # Program-order memory issue within the task.  The
                # head index is frozen for the whole cycle (the
                # reference window scan also still sees entries
                # issued earlier this cycle), so at most one memory
                # op issues per cycle through this gate.
                if unissued_mem[mem_head] != idx:
                    reason = StallReason.MEMORY
                if reason is None:
                    # ARB capacity: a speculative task with a full
                    # ARB stalls its memory operations until it
                    # becomes the head.  Outcome depends on
                    # retire_seq: invalidate on retire.
                    if arb_capacity > 0 and self.arb_used >= arb_capacity:
                        retire_sensitive = True
                        if not at_head:
                            reason = StallReason.MEMORY
                    if reason is None and is_load[idx]:
                        p = mem_producer[idx]
                        if p >= 0:
                            pseq = task_seq[p]
                            if pseq == seq:
                                done = complete[p]
                                if done < 0 or done > cycle:
                                    reason = StallReason.MEMORY
                            elif complete[p] < 0 or complete[p] > cycle:
                                # Not forwarded by the ARB yet.
                                if machine.is_synchronised(p, idx):
                                    # Touched the sync table's LRU:
                                    # never memoize this result.
                                    sync_block = True
                                    if not at_head:
                                        reason = StallReason.SYNC_WAIT
                                # else: speculate
            if reason is not None:
                if first_block is None:
                    first_block = reason
                if not out_of_order:
                    break
                continue
            cls = opcls[idx]
            if budget[cls] <= 0:
                if first_block is None:
                    first_block = StallReason.USEFUL
                if not out_of_order:
                    break
                continue
            budget[cls] -= 1
            if is_load[idx]:
                p = mem_producer[idx]
                if p >= 0 and task_seq[p] == seq:
                    latency = stlf_latency
                elif p >= 0 and complete[p] >= 0:
                    latency = arb_latency
                else:
                    if p >= 0:
                        # Speculative load: may be violated when p
                        # executes.
                        machine.register_speculative_load(p, idx, seq)
                    latency = machine.data_access(addr[idx])
                    if latency < arb_latency:
                        latency = arb_latency
            else:
                latency = latency_of[idx]
            heappush(in_flight, (cycle + latency + lat_extra[cls], idx))
            issued_pos.append(pos)
            issued += 1
            if is_mem[idx]:
                self.next_mem_ptr = idx + 1
                issued_mem += 1
                if not at_head:
                    self.arb_used += 1

        self.issue_wake = issue_wake
        if issued:
            if self.first_issue < 0:
                self.first_issue = cycle
            if issued_mem:
                self.mem_head = mem_head + issued_mem
            for shift, pos in enumerate(issued_pos):
                del unissued[pos - shift]
            self.last_block = None
            self.issue_cache_key = -1
            return issued, None
        self.last_block = first_block
        if first_block is not None:
            self.last_slot = first_block.slot
        self.retire_sensitive = retire_sensitive
        if sync_block:
            self.issue_cache_key = -1
        else:
            self.issue_cache_key = machine._mut_version
            self.issue_retire_key = machine._retire_version
        return 0, first_block

    # ---------------------------------------------------------- event probe

    def next_event_cycle(
        self, t: int, machine
    ) -> Tuple[int, Optional[int]]:
        """Earliest cycle >= ``t`` this PU could act, and the stall slot
        (a ``REASONS`` index, or None) it charges until then.

        Only meaningful immediately after a cycle in which this PU made
        no progress (nothing drained, issued, or fetched): the blocking
        state observed by that cycle's ``issue`` call then holds for
        every cycle before the returned wake-up point, so the machine
        can charge the whole quiescent span in one step.  Wake-up
        sources that live on *other* units (a producer task's
        completion, the retire chain, the sequencer) are deliberately
        not bounded here — the machine takes the minimum across all
        units, and any of those events ends the span globally.
        """
        if self.wrong or self.retiring:
            return _NEVER, None
        dyn = self.dyn_task
        if dyn is None:
            return _NEVER, None  # charged as machine-level IDLE
        if self.done:
            return _NEVER, _R_LOAD_IMBALANCE
        in_flight = self.in_flight
        wake = in_flight[0][0] if in_flight else _NEVER
        if (
            self.pending_branch < 0
            and self.fetch_ptr < dyn.end
            and self.rob_count < self.config.rob_size
        ):
            resume = self.fetch_resume
            if resume < t:
                resume = t
            if resume < wake:
                wake = resume
        if self.issue_wake < wake:
            wake = self.issue_wake
        boundary = self.assign_cycle + self.config.task_start_overhead
        if t < boundary:
            # The charge category flips from TASK_START at the boundary.
            if boundary < wake:
                wake = boundary
            return wake, _R_TASK_START
        if self.last_block is None:
            return wake, _R_FETCH
        return wake, self.last_slot
