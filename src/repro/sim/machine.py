"""The Multiscalar machine: sequencer, PU ring, squash and retire.

Per-cycle phases:

A. **Completions** — each PU drains instructions finishing this cycle;
   completed stores are checked against speculatively executed loads
   of later tasks (ARB violation → memory dependence squash).  A task
   whose successor was mispredicted resolves the misprediction when it
   completes: wrong-path occupancy is squashed (control penalty) and
   the sequencer redirects.
B. **Retire** — the oldest task, once complete, commits for
   ``task_end_overhead`` cycles and frees its PU; tasks retire strictly
   in program order (waiting tasks accumulate *load imbalance*).
C. **Assign** — the sequencer assigns at most one task per cycle to
   the next PU around the ring; after assigning it predicts the task's
   successor (path-based predictor + return address stack).  While a
   misprediction is unresolved, free PUs fill with wrong-path work.
D. **Execute** — each PU issues and fetches; every occupied PU-cycle
   is charged to a Figure-2 category.

The simulation is trace-driven: squashed work re-executes the same
dynamic instructions at later cycles; committed instruction count
equals the trace length exactly once.

Two engines share the phase logic (:meth:`MultiscalarMachine._tick`):

* ``engine="reference"`` ticks every cycle — the original, obviously
  correct loop kept as the equivalence oracle.
* ``engine="fast"`` (default) is event-driven: after a *quiescent*
  tick (no completion drained, nothing issued or fetched, no retire /
  assign / redirect progress) the machine asks every unit for its next
  possible event cycle — head of the completion heap, fetch resume,
  scheduled ring-forward arrival, task-start boundary, retire finish,
  sequencer resume — jumps straight to the minimum, and bulk-charges
  the skipped cycles to the stall category each PU was accumulating.
  Because a quiescent cycle's blocking state provably cannot change
  before one of those events (every state transition in the model is
  caused by one), the fast engine produces bit-identical results;
  ``tests/test_fastpath.py`` enforces this cell-by-cell against the
  reference engine.  Fault injection mutates per-cycle cooldown state,
  so a machine with a fault plan attached never skips.
"""

from __future__ import annotations

import gc
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compiler.regcomm import ReleaseAnalysis
from repro.compiler.task import TargetKind
from repro.predict import ReturnAddressStack, make_task_predictor
from repro.sim.breakdown import (
    REASON_INDEX,
    CycleBreakdown,
    StallReason,
)
from repro.sim.config import SimConfig
from repro.sim.memory import MemoryHierarchy
from repro.sim.pu import ProcessingUnit
from repro.sim.runstate import RunState
from repro.sim.taskstream import TaskStream

_NEVER = 1 << 60

_R_USEFUL = REASON_INDEX[StallReason.USEFUL]
_R_TASK_START = REASON_INDEX[StallReason.TASK_START]
_R_TASK_END = REASON_INDEX[StallReason.TASK_END]
_R_FETCH = REASON_INDEX[StallReason.FETCH]
_R_LOAD_IMBALANCE = REASON_INDEX[StallReason.LOAD_IMBALANCE]
_N_REASONS = len(REASON_INDEX)


@dataclass
class SimResult:
    """Everything a run measures."""

    cycles: int
    committed_instructions: int
    dynamic_tasks: int
    task_predictions: int
    task_mispredictions: int
    control_squashes: int
    memory_squashes: int
    gshare_accuracy: float
    branch_count: int
    mean_window_span: float
    breakdown: CycleBreakdown
    cache_stats: Dict[str, float] = field(default_factory=dict)
    #: in-flight tasks thrown away per squash event, in squash order
    #: (feeds the telemetry squash-depth histogram)
    squash_depths: List[int] = field(default_factory=list)
    #: per-PU cycles spent issuing retired work (index = PU position
    #: around the ring); identical across engines because every task's
    #: accounting folds at the shared retire path
    pu_useful: List[int] = field(default_factory=list)
    #: per-PU total occupied cycles of retired tasks (useful + stalls
    #: + task overheads; excludes idle and squashed occupancy)
    pu_occupied: List[int] = field(default_factory=list)

    def pu_utilization(self) -> List[float]:
        """Per-PU useful / occupied ratio (0.0 where never occupied)."""
        return [
            useful / occupied if occupied else 0.0
            for useful, occupied in zip(self.pu_useful, self.pu_occupied)
        ]

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.committed_instructions / self.cycles if self.cycles else 0.0

    @property
    def task_prediction_accuracy(self) -> float:
        """Fraction of correctly predicted inter-task transitions."""
        if self.task_predictions == 0:
            return 1.0
        return 1.0 - self.task_mispredictions / self.task_predictions


class SimulationStuck(RuntimeError):
    """The cycle loop cannot make progress (a model bug guard).

    Raised when ``max_cycles`` is exceeded, or — fast engine only —
    when no unit reports a future event while unretired tasks remain.
    The message carries the workload label, engine, retire progress
    and current cycle so a stuck grid cell is diagnosable from the
    traceback alone.
    """


class MultiscalarMachine:
    """Cycle-level model of the whole processor."""

    def __init__(
        self,
        stream: TaskStream,
        config: Optional[SimConfig] = None,
        release: Optional[ReleaseAnalysis] = None,
        monitor=None,
        faults=None,
        label: Optional[str] = None,
        tracer=None,
    ) -> None:
        self.config = config or SimConfig()
        self.stream = stream
        self.label = label
        self.state = RunState(stream, self.config, release)
        self.hierarchy = MemoryHierarchy(self.config)
        # The machine spec (if any) supplies per-PU profiles and the
        # inter-task predictor kind; without one, every PU inherits
        # the global config and the predictor is the paper's
        # path-based scheme — the exact pre-machines construction.
        machine_spec = self.config.machine
        if machine_spec is not None:
            profiles = machine_spec.pus
            predictor_kind = machine_spec.predictor
        else:
            profiles = (None,) * self.config.n_pus
            predictor_kind = "path"
        self.predictor = make_task_predictor(predictor_kind)
        self.ras = ReturnAddressStack()
        self.pus = [
            ProcessingUnit(i, self.config, self.state, profile=profiles[i])
            for i in range(self.config.n_pus)
        ]
        for pu in self.pus:
            pu.attach_egress({})
            pu.icache_access = self.hierarchy.inst_access  # type: ignore[assignment]
        self.breakdown = CycleBreakdown()
        # sync table: (store_pc, load_pc) -> None, LRU-ordered
        self.sync_pairs: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        # speculative loads awaiting their producer store:
        # store_idx -> list of (load_idx, seq, generation)
        self.pending_viol: Dict[int, List[Tuple[int, int, int]]] = {}
        self.retire_seq = 0
        self.next_seq = 0
        self.next_assign_pu = 0
        self.resume_cycle = 0
        self.pending_mispredict: Optional[int] = None
        self.in_flight: Dict[int, ProcessingUnit] = {}
        self.task_predictions = 0
        self.task_mispredictions = 0
        self.control_squashes = 0
        self.memory_squashes = 0
        self._retiring_pu: Optional[ProcessingUnit] = None
        self._retire_finish = -1
        self._active_span = 0
        self._span_accum = 0
        self.cycle = 0
        #: bumped whenever machine state that any PU's issue decision
        #: could observe changes (see ProcessingUnit.issue memoization)
        self._mut_version = 0
        #: bumped on retires only; consulted just by ARB-gate-blocked
        #: results, so a retire doesn't invalidate every memo
        self._retire_version = 0
        #: idle PU-cycles, folded into the breakdown at result time so
        #: the per-cycle path is an int increment, not a dict update
        self._idle_accum = 0
        #: retired tasks' stall accounting, slotted per REASONS; folded
        #: into the breakdown at result time so each retire is ten int
        #: adds instead of an enum-keyed dict merge
        self._reason_accum = [0] * _N_REASONS
        #: the same accounting split per PU (useful, total occupied) —
        #: feeds SimResult.pu_useful/pu_occupied for the scaling
        #: study's starvation telemetry
        self._pu_useful = [0] * self.config.n_pus
        self._pu_occupied = [0] * self.config.n_pus
        #: per-tick constants, unpacked once per _tick call instead of
        #: re-reading config attributes every cycle
        self._tick_consts = (
            self.config.task_start_overhead,
            self.config.rob_size,
            self.pus[0]._lazy_fp if self.pus else False,
        )
        # Optional reliability hooks (duck-typed; see repro.reliability).
        # ``monitor`` receives assignment/squash/retire events and may
        # raise on invariant violations; ``faults`` injects forced
        # mispredictions and spurious memory violations.
        self.monitor = monitor
        self.faults = faults
        #: tasks thrown away per squash event (len(victims) each time)
        self.squash_depths: List[int] = []
        # Optional telemetry collector (duck-typed; see repro.telemetry).
        # Same contract as the monitor: the simulator never imports the
        # telemetry package and every hook site costs one None test.
        self.tracer = tracer
        if faults is not None:
            faults.bind(len(stream.tasks))
        if monitor is not None:
            monitor.attach(self)
        if tracer is not None:
            tracer.attach(self)
            for pu in self.pus:
                pu.tracer = tracer

    # ------------------------------------------------------------- services

    def data_access(self, word_addr: int) -> int:
        """Data cache access latency (PU callback)."""
        return self.hierarchy.data_access(word_addr)

    def is_synchronised(self, store_idx: int, load_idx: int) -> bool:
        """True if the sync table holds this (store PC, load PC) pair."""
        key = (self.state.pc[store_idx], self.state.pc[load_idx])
        if key in self.sync_pairs:
            self.sync_pairs.move_to_end(key)
            return True
        return False

    def _learn_sync(self, store_idx: int, load_idx: int) -> None:
        if self.config.sync_table_size <= 0:
            return
        self._mut_version += 1
        key = (self.state.pc[store_idx], self.state.pc[load_idx])
        self.sync_pairs[key] = None
        self.sync_pairs.move_to_end(key)
        while len(self.sync_pairs) > self.config.sync_table_size:
            self.sync_pairs.popitem(last=False)

    def register_speculative_load(
        self, store_idx: int, load_idx: int, seq: int
    ) -> None:
        """Record a load that issued before its producer store."""
        self.pending_viol.setdefault(store_idx, []).append(
            (load_idx, seq, self.state.generation[seq])
        )

    # --------------------------------------------------------------- squash

    def _squash_from(self, first_seq: int, cycle: int, memory: bool) -> None:
        """Squash every in-flight real task with seq >= ``first_seq``."""
        self._mut_version += 1
        victims = sorted(s for s in self.in_flight if s >= first_seq)
        if victims:
            self.squash_depths.append(len(victims))
        if (
            self._retiring_pu is not None
            and self._retiring_pu.seq >= first_seq
        ):
            # The task that began committing is itself a victim.
            self._retiring_pu = None
        for seq in victims:
            pu = self.in_flight.pop(seq)
            penalty = max(0, cycle - pu.assign_cycle)
            if memory:
                self.breakdown.charge_memory_squash(penalty)
            else:
                self.breakdown.charge_control_squash(penalty)
            if self.monitor is not None:
                self.monitor.on_squash_victim(
                    seq, pu.index, cycle, penalty, memory
                )
            if self.tracer is not None:
                self.tracer.on_squash(
                    seq, pu.index, cycle, penalty, memory, pu.first_issue
                )
            self._active_span -= self.stream.tasks[seq].length
            self.state.clear_span(seq)
            pu.reset_idle()
        self._squash_wrong(cycle)
        if self.pending_mispredict is not None and self.pending_mispredict >= first_seq:
            self.pending_mispredict = None
        self.next_seq = min(self.next_seq, first_seq)
        if first_seq > 0:
            prev_pu = self.state.pu_of_seq[first_seq - 1]
            self.next_assign_pu = (prev_pu + 1) % self.config.n_pus
        else:
            self.next_assign_pu = 0
        self.resume_cycle = max(self.resume_cycle, cycle + 1)
        if self.monitor is not None:
            self.monitor.post_squash(first_seq, cycle)

    def _squash_wrong(self, cycle: int) -> None:
        self._mut_version += 1
        for pu in self.pus:
            if pu.wrong:
                penalty = max(0, cycle - pu.assign_cycle)
                self.breakdown.charge_control_squash(penalty)
                if self.monitor is not None:
                    self.monitor.on_wrong_squash(pu.index, cycle, penalty)
                if self.tracer is not None:
                    self.tracer.on_wrong_squash(pu.index, cycle, penalty)
                pu.reset_idle()

    def _check_store_violation(self, store_idx: int, cycle: int) -> None:
        """A store completed: squash the earliest stale speculative load."""
        entries = self.pending_viol.pop(store_idx, None)
        if not entries:
            return
        state = self.state
        victim_seq: Optional[int] = None
        victim_load = -1
        for load_idx, seq, gen in entries:
            if state.generation[seq] != gen:
                continue  # that execution was already squashed
            if seq < self.retire_seq or seq not in self.in_flight:
                continue
            if victim_seq is None or seq < victim_seq:
                victim_seq = seq
                victim_load = load_idx
        if victim_seq is None:
            return
        self.memory_squashes += 1
        if self.monitor is not None:
            self.monitor.on_memory_violation(victim_seq)
        if self.tracer is not None:
            self.tracer.on_arb_violation(victim_seq, cycle)
        self._learn_sync(store_idx, victim_load)
        self._squash_from(victim_seq, cycle, memory=True)

    def _inject_memory_fault(self, cycle: int) -> None:
        """Spurious ARB violation from the fault plan (if one is due)."""
        victim = self.faults.memory_fault_victim(self, cycle)
        if victim is None:
            return
        self.memory_squashes += 1
        if self.monitor is not None:
            self.monitor.on_memory_violation(victim, injected=True)
        if self.tracer is not None:
            self.tracer.on_arb_violation(victim, cycle, injected=True)
        self._squash_from(victim, cycle, memory=True)

    # --------------------------------------------------------------- assign

    def _continuation_root(self, seq: int):
        """Root of the task entered when the callee of task ``seq`` returns."""
        dyn = self.stream.tasks[seq]
        call_inst = self.stream.trace.insts[dyn.end - 1]
        blk = self.stream.partition.program.block(call_inst.block)
        assert blk.fallthrough is not None
        return (call_inst.block[0], blk.fallthrough)

    def _predict_successor(self, seq: int, cycle: int) -> None:
        """Predict task ``seq``'s successor; set pending on mispredict."""
        dyn = self.stream.tasks[seq]
        if dyn.target is None:
            return  # final task
        pc = self.stream.partition.program.block_pc(dyn.task.root)
        mispredicted_index = self.predictor.update(pc, dyn.target_index)
        correct = not mispredicted_index
        if correct and dyn.target.kind is TargetKind.RETURN:
            correct = self.ras.peek() == dyn.next_root
        if dyn.target.kind is TargetKind.CALL:
            self.ras.push(self._continuation_root(seq))
        elif dyn.target.kind is TargetKind.RETURN:
            self.ras.pop()
        self.predictor.push_history(pc)
        self.task_predictions += 1
        if correct and self.faults is not None and self.faults.take_control_fault(seq):
            # Injected fault: treat a correct prediction as wrong.  The
            # sequencer redirects to the (unchanged) correct successor
            # when this task completes, so only cycles are lost.
            correct = False
        if not correct:
            self.task_mispredictions += 1
            self.pending_mispredict = seq
            self.control_squashes += 1
            if self.monitor is not None:
                self.monitor.on_control_mispredict(seq)
            if self.tracer is not None:
                self.tracer.on_task_mispredict(seq, cycle)

    def _assign(self, cycle: int) -> bool:
        """Phase C; returns True when a PU was occupied this cycle."""
        if cycle < self.resume_cycle:
            return False
        pu = self.pus[self.next_assign_pu]
        if not pu.idle:
            return False
        if self.pending_mispredict is not None:
            pu.assign_wrong(cycle)
            if self.monitor is not None:
                self.monitor.on_wrong_assign(pu.index, cycle)
            if self.tracer is not None:
                self.tracer.on_wrong_assign(pu.index, cycle)
            self.next_assign_pu = (self.next_assign_pu + 1) % self.config.n_pus
            return True
        if self.next_seq >= len(self.stream.tasks):
            return False
        # No version bump: a fresh assignment changes nothing another
        # PU's blocked-issue computation reads (pu_of_seq of a task is
        # only consulted once that task has completed values, which
        # postdates its assignment; squash-driven reassignment is
        # covered by the squash bump).
        seq = self.next_seq
        dyn = self.stream.tasks[seq]
        pu.assign(dyn, cycle)
        self.in_flight[seq] = pu
        if self.monitor is not None:
            self.monitor.on_assign(seq, pu.index, cycle)
        if self.tracer is not None:
            self.tracer.on_assign(seq, pu.index, cycle)
        self._active_span += dyn.length
        self.next_seq += 1
        self.next_assign_pu = (self.next_assign_pu + 1) % self.config.n_pus
        self._predict_successor(seq, cycle)
        return True

    # --------------------------------------------------------------- retire

    def _retire(self, cycle: int) -> bool:
        """Phase B; returns True when a retire completed or started."""
        active = False
        if self._retiring_pu is not None:
            if cycle < self._retire_finish:
                return False
            pu = self._retiring_pu
            accum = self._reason_accum
            occupied = 0
            for i, n in enumerate(pu.local_counts):
                if n:
                    accum[i] += n
                    occupied += n
            self._pu_useful[pu.index] += pu.local_counts[_R_USEFUL]
            self._pu_occupied[pu.index] += occupied
            seq = pu.seq
            self._active_span -= self.stream.tasks[seq].length
            del self.in_flight[seq]
            if self.tracer is not None:
                # Capture per-task state before reset_idle clears it.
                self.tracer.on_retire(
                    seq, pu.index, cycle, pu.first_issue, pu.done_cycle
                )
            pu.reset_idle()
            if self.monitor is not None:
                self.monitor.on_retire(seq, cycle)
            self.retire_seq += 1
            self._retiring_pu = None
            self._retire_version += 1
            active = True
        pu = self.in_flight.get(self.retire_seq)
        if pu is not None and pu.done:
            pu.local_counts[_R_TASK_END] += self.config.task_end_overhead
            pu.retiring = True
            self._retiring_pu = pu
            self._retire_finish = cycle + self.config.task_end_overhead
            if self.tracer is not None:
                self.tracer.on_commit_start(pu.seq, pu.index, cycle)
            active = True
        return active

    # ------------------------------------------------------------- run loop

    def _tick(self, cycle: int) -> bool:
        """Run phases A–D for one cycle; True when anything progressed.

        "Progress" means: an instruction completed, a misprediction
        resolved, a retire started or finished, a PU was assigned,
        or anything issued or fetched.  A False return certifies the
        machine was quiescent, which is what licenses the fast engine
        to consult :meth:`ProcessingUnit.next_event_cycle` and skip.
        """
        config = self.config
        active = False
        pus = self.pus
        # Phase A: completions (+ violation checks, + control resolve).
        for pu in pus:
            if pu.dyn_task is None:
                continue
            in_flight = pu.in_flight
            if in_flight:
                if in_flight[0][0] > cycle:
                    continue
            elif pu.done or pu.remaining or pu.fetch_ptr < pu.dyn_task.end:
                # Nothing pending, and the done-flip (the only other
                # thing drain does) needs remaining == 0 AND a finished
                # fetch stream.
                continue
            stores, popped, global_event, cross_popped = (
                pu.drain_completions(cycle)
            )
            if popped:
                active = True
            if global_event:
                self._mut_version += 1
            if cross_popped:
                # Invalidate exactly the tasks whose issue decisions
                # can observe these completions (their register or
                # memory consumers); everyone else's memoized blocked
                # results stay valid.
                consumer_seqs = self.state.consumer_seqs
                tasks_on_pus = self.in_flight
                for cidx in cross_popped:
                    for cs in consumer_seqs[cidx]:
                        cpu = tasks_on_pus.get(cs)
                        if cpu is not None:
                            cpu.issue_cache_key = -1
            for store_idx in stores:
                self._check_store_violation(store_idx, cycle)
        if self.pending_mispredict is not None:
            src = self.in_flight.get(self.pending_mispredict)
            if src is not None and src.done:
                active = True
                self._squash_wrong(cycle)
                self.next_assign_pu = (
                    self.state.pu_of_seq[self.pending_mispredict] + 1
                ) % config.n_pus
                self.pending_mispredict = None
                self.resume_cycle = max(
                    self.resume_cycle,
                    cycle + config.task_mispredict_redirect,
                )
        if self.faults is not None:
            self._inject_memory_fault(cycle)
        # Phase B: retire.
        if self._retiring_pu is not None:
            if self._retire(cycle):
                active = True
        else:
            head = self.in_flight.get(self.retire_seq)
            if head is not None and head.done and self._retire(cycle):
                active = True
        # Phase C: assign.
        if cycle >= self.resume_cycle:
            nxt = pus[self.next_assign_pu]
            if nxt.dyn_task is None and not nxt.wrong and self._assign(cycle):
                active = True
        # Phase D: execute + accounting.
        task_start_overhead, rob_size, lazy_fp = self._tick_consts
        mut_version = self._mut_version
        retire_version = self._retire_version
        idle = 0
        for pu in pus:
            if pu.wrong:
                continue  # charged as penalty at resolution
            if pu.dyn_task is None:
                idle += 1
                continue
            if pu.retiring:
                continue  # TASK_END charged up front
            counts = pu.local_counts
            if pu.done:
                counts[_R_LOAD_IMBALANCE] += 1
                continue
            if (
                pu.issue_cache_key == mut_version
                and cycle < pu.issue_wake
                and (
                    not pu.retire_sensitive
                    or pu.issue_retire_key == retire_version
                )
            ):
                # Memoized blocked result: nothing this PU's issue
                # decision observes has changed since it was computed.
                issued = 0
                reason = pu.last_block
            elif pu.unissued:
                issued, reason = pu.issue(cycle, self)
            else:
                # Empty window: issue() would early-return; skip the
                # call (its other preconditions are already excluded
                # above) but keep its cache bookkeeping.
                pu.issue_wake = _NEVER
                pu.retire_sensitive = False
                pu.last_block = None
                pu.issue_cache_key = mut_version
                issued = 0
                reason = None
            if (
                pu.pending_branch < 0
                and cycle >= pu.fetch_resume
                and pu.fetch_ptr < pu.fetch_end
                and pu.rob_count < rob_size
                and pu.fetch(cycle)
            ):
                active = True
                if lazy_fp and pu.done:
                    # The task finished at fetch: its writes just
                    # bulk-forwarded, which later-scanned PUs' issue
                    # decisions may observe this very cycle — keep the
                    # hoisted version in step.
                    self._mut_version += 1
                    mut_version = self._mut_version
            if issued:
                active = True
                counts[_R_USEFUL] += 1
            elif cycle < pu.assign_cycle + task_start_overhead:
                counts[_R_TASK_START] += 1
            elif reason is not None:
                counts[pu.last_slot] += 1
            else:
                counts[_R_FETCH] += 1
        self._idle_accum += idle
        self._span_accum += self._active_span
        return active

    def run(self) -> SimResult:
        """Simulate until every dynamic task has retired."""
        if len(self.stream.tasks) == 0:
            result = self._result(0)
            if self.monitor is not None:
                self.monitor.on_finish(self, result)
            if self.tracer is not None:
                self.tracer.on_finish(self, result)
            return result
        # The cycle loop allocates only acyclic, reference-counted
        # garbage (tuples, small lists); the cyclic collector just
        # burns time re-scanning the trace arrays.  Pause it for the
        # duration of the run, restoring the caller's setting.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            if self.config.engine == "reference":
                cycles = self._run_reference()
            elif self.config.engine == "batched":
                from repro.sim.batched import run_cell

                cycles = run_cell(self)
            else:
                cycles = self._run_fast()
        finally:
            if gc_was_enabled:
                gc.enable()
        self.cycle = cycles
        result = self._result(cycles)
        if self.monitor is not None:
            self.monitor.on_finish(self, result)
        if self.tracer is not None:
            self.tracer.on_finish(self, result)
        return result

    def _run_reference(self) -> int:
        """The original uniform per-cycle loop (equivalence oracle)."""
        max_cycles = self.config.max_cycles
        n_tasks = len(self.stream.tasks)
        cycle = 0
        while self.retire_seq < n_tasks:
            if cycle > max_cycles:
                raise self._stuck(cycle, f"exceeded {max_cycles} cycles")
            self._tick(cycle)
            cycle += 1
        return cycle

    def _run_fast(self) -> int:
        """Event-driven loop: tick, and after a quiescent tick jump to
        the next event, bulk-charging the skipped span."""
        config = self.config
        max_cycles = config.max_cycles
        n_tasks = len(self.stream.tasks)
        pus = self.pus
        # Fault plans decrement per-cycle cooldowns: every cycle must
        # be presented to them, so skipping is off.
        can_skip = self.faults is None
        cycle = 0
        while self.retire_seq < n_tasks:
            if cycle > max_cycles:
                raise self._stuck(cycle, f"exceeded {max_cycles} cycles")
            if self._tick(cycle) or not can_skip:
                cycle += 1
                continue
            # Quiescent: find the earliest cycle anything can happen.
            t = cycle + 1
            wake = _NEVER
            if self._retiring_pu is not None:
                wake = self._retire_finish
            if pus[self.next_assign_pu].idle and (
                self.pending_mispredict is not None
                or self.next_seq < n_tasks
            ):
                resume = self.resume_cycle
                if resume < t:
                    resume = t
                if resume < wake:
                    wake = resume
            idle_pus = 0
            charged: List[Tuple[List[int], int]] = []
            for pu in pus:
                if pu.wrong or pu.retiring:
                    continue
                if pu.dyn_task is None:
                    idle_pus += 1
                    continue
                w, slot = pu.next_event_cycle(t, self)
                if w < wake:
                    wake = w
                if slot is not None:
                    charged.append((pu.local_counts, slot))
            if wake >= _NEVER:
                raise self._stuck(cycle, "no pending event (livelock)")
            if wake <= t:
                cycle = t
                continue
            if wake > max_cycles:
                wake = max_cycles + 1  # let the guard above raise
            skipped = wake - t
            if self.tracer is not None:
                self.tracer.on_cycle_skip(cycle, wake)
            if idle_pus:
                self._idle_accum += idle_pus * skipped
            for counts, slot in charged:
                counts[slot] += skipped
            self._span_accum += self._active_span * skipped
            cycle = wake
        return cycle

    def _stuck(self, cycle: int, reason: str) -> SimulationStuck:
        label = f"{self.label}: " if self.label else ""
        return SimulationStuck(
            f"{label}{reason} at cycle {cycle} "
            f"(engine={self.config.engine}, "
            f"retired {self.retire_seq}/{len(self.stream.tasks)} tasks, "
            f"next_seq={self.next_seq}, "
            f"pending_mispredict={self.pending_mispredict})"
        )

    def _result(self, cycles: int) -> SimResult:
        if any(self._reason_accum):
            self.breakdown.charge_counts(self._reason_accum)
            self._reason_accum = [0] * _N_REASONS
        if self._idle_accum:
            self.breakdown.charge(StallReason.IDLE, self._idle_accum)
            self._idle_accum = 0
        mean_span = self._span_accum / cycles if cycles else 0.0
        return SimResult(
            cycles=cycles,
            committed_instructions=len(self.stream.trace),
            dynamic_tasks=len(self.stream.tasks),
            task_predictions=self.task_predictions,
            task_mispredictions=self.task_mispredictions,
            control_squashes=self.control_squashes,
            memory_squashes=self.memory_squashes,
            gshare_accuracy=self.state.gshare_accuracy,
            branch_count=self.state.branch_count,
            mean_window_span=mean_span,
            breakdown=self.breakdown,
            cache_stats=self.hierarchy.stats(),
            squash_depths=list(self.squash_depths),
            pu_useful=list(self._pu_useful),
            pu_occupied=list(self._pu_occupied),
        )


def simulate(
    stream: TaskStream,
    config: Optional[SimConfig] = None,
    release: Optional[ReleaseAnalysis] = None,
    monitor=None,
    faults=None,
    label: Optional[str] = None,
    tracer=None,
) -> SimResult:
    """Convenience: build a machine for ``stream`` and run it."""
    return MultiscalarMachine(
        stream, config, release, monitor, faults, label=label, tracer=tracer
    ).run()
