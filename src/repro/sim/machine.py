"""The Multiscalar machine: sequencer, PU ring, squash and retire.

Per-cycle phases:

A. **Completions** — each PU drains instructions finishing this cycle;
   completed stores are checked against speculatively executed loads
   of later tasks (ARB violation → memory dependence squash).  A task
   whose successor was mispredicted resolves the misprediction when it
   completes: wrong-path occupancy is squashed (control penalty) and
   the sequencer redirects.
B. **Retire** — the oldest task, once complete, commits for
   ``task_end_overhead`` cycles and frees its PU; tasks retire strictly
   in program order (waiting tasks accumulate *load imbalance*).
C. **Assign** — the sequencer assigns at most one task per cycle to
   the next PU around the ring; after assigning it predicts the task's
   successor (path-based predictor + return address stack).  While a
   misprediction is unresolved, free PUs fill with wrong-path work.
D. **Execute** — each PU issues and fetches; every occupied PU-cycle
   is charged to a Figure-2 category.

The simulation is trace-driven: squashed work re-executes the same
dynamic instructions at later cycles; committed instruction count
equals the trace length exactly once.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compiler.regcomm import ReleaseAnalysis
from repro.compiler.task import TargetKind
from repro.predict import PathPredictor, ReturnAddressStack
from repro.sim.breakdown import CycleBreakdown, StallReason
from repro.sim.config import SimConfig
from repro.sim.memory import MemoryHierarchy
from repro.sim.pu import ProcessingUnit
from repro.sim.runstate import RunState
from repro.sim.taskstream import TaskStream


@dataclass
class SimResult:
    """Everything a run measures."""

    cycles: int
    committed_instructions: int
    dynamic_tasks: int
    task_predictions: int
    task_mispredictions: int
    control_squashes: int
    memory_squashes: int
    gshare_accuracy: float
    branch_count: int
    mean_window_span: float
    breakdown: CycleBreakdown
    cache_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.committed_instructions / self.cycles if self.cycles else 0.0

    @property
    def task_prediction_accuracy(self) -> float:
        """Fraction of correctly predicted inter-task transitions."""
        if self.task_predictions == 0:
            return 1.0
        return 1.0 - self.task_mispredictions / self.task_predictions


class SimulationStuck(RuntimeError):
    """The cycle loop exceeded ``max_cycles`` (a model bug guard)."""


class MultiscalarMachine:
    """Cycle-level model of the whole processor."""

    def __init__(
        self,
        stream: TaskStream,
        config: Optional[SimConfig] = None,
        release: Optional[ReleaseAnalysis] = None,
        monitor=None,
        faults=None,
    ) -> None:
        self.config = config or SimConfig()
        self.stream = stream
        self.state = RunState(stream, self.config, release)
        self.hierarchy = MemoryHierarchy(self.config)
        self.predictor = PathPredictor()
        self.ras = ReturnAddressStack()
        self.pus = [
            ProcessingUnit(i, self.config, self.state)
            for i in range(self.config.n_pus)
        ]
        for pu in self.pus:
            pu.attach_egress({})
            pu.icache_access = self.hierarchy.inst_access  # type: ignore[assignment]
        self.breakdown = CycleBreakdown()
        # sync table: (store_pc, load_pc) -> None, LRU-ordered
        self.sync_pairs: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        # speculative loads awaiting their producer store:
        # store_idx -> list of (load_idx, seq, generation)
        self.pending_viol: Dict[int, List[Tuple[int, int, int]]] = {}
        self.retire_seq = 0
        self.next_seq = 0
        self.next_assign_pu = 0
        self.resume_cycle = 0
        self.pending_mispredict: Optional[int] = None
        self.in_flight: Dict[int, ProcessingUnit] = {}
        self.task_predictions = 0
        self.task_mispredictions = 0
        self.control_squashes = 0
        self.memory_squashes = 0
        self._retiring_pu: Optional[ProcessingUnit] = None
        self._retire_finish = -1
        self._active_span = 0
        self._span_accum = 0
        self.cycle = 0
        # Optional reliability hooks (duck-typed; see repro.reliability).
        # ``monitor`` receives assignment/squash/retire events and may
        # raise on invariant violations; ``faults`` injects forced
        # mispredictions and spurious memory violations.
        self.monitor = monitor
        self.faults = faults
        if faults is not None:
            faults.bind(len(stream.tasks))
        if monitor is not None:
            monitor.attach(self)

    # ------------------------------------------------------------- services

    def data_access(self, word_addr: int) -> int:
        """Data cache access latency (PU callback)."""
        return self.hierarchy.data_access(word_addr)

    def is_synchronised(self, store_idx: int, load_idx: int) -> bool:
        """True if the sync table holds this (store PC, load PC) pair."""
        key = (self.state.pc[store_idx], self.state.pc[load_idx])
        if key in self.sync_pairs:
            self.sync_pairs.move_to_end(key)
            return True
        return False

    def _learn_sync(self, store_idx: int, load_idx: int) -> None:
        if self.config.sync_table_size <= 0:
            return
        key = (self.state.pc[store_idx], self.state.pc[load_idx])
        self.sync_pairs[key] = None
        self.sync_pairs.move_to_end(key)
        while len(self.sync_pairs) > self.config.sync_table_size:
            self.sync_pairs.popitem(last=False)

    def register_speculative_load(
        self, store_idx: int, load_idx: int, seq: int
    ) -> None:
        """Record a load that issued before its producer store."""
        self.pending_viol.setdefault(store_idx, []).append(
            (load_idx, seq, self.state.generation[seq])
        )

    # --------------------------------------------------------------- squash

    def _squash_from(self, first_seq: int, cycle: int, memory: bool) -> None:
        """Squash every in-flight real task with seq >= ``first_seq``."""
        victims = sorted(s for s in self.in_flight if s >= first_seq)
        if (
            self._retiring_pu is not None
            and self._retiring_pu.seq >= first_seq
        ):
            # The task that began committing is itself a victim.
            self._retiring_pu = None
        for seq in victims:
            pu = self.in_flight.pop(seq)
            penalty = max(0, cycle - pu.assign_cycle)
            if memory:
                self.breakdown.charge_memory_squash(penalty)
            else:
                self.breakdown.charge_control_squash(penalty)
            if self.monitor is not None:
                self.monitor.on_squash_victim(
                    seq, pu.index, cycle, penalty, memory
                )
            self._active_span -= self.stream.tasks[seq].length
            self.state.clear_span(seq)
            pu.reset_idle()
        self._squash_wrong(cycle)
        if self.pending_mispredict is not None and self.pending_mispredict >= first_seq:
            self.pending_mispredict = None
        self.next_seq = min(self.next_seq, first_seq)
        if first_seq > 0:
            prev_pu = self.state.pu_of_seq[first_seq - 1]
            self.next_assign_pu = (prev_pu + 1) % self.config.n_pus
        else:
            self.next_assign_pu = 0
        self.resume_cycle = max(self.resume_cycle, cycle + 1)
        if self.monitor is not None:
            self.monitor.post_squash(first_seq, cycle)

    def _squash_wrong(self, cycle: int) -> None:
        for pu in self.pus:
            if pu.wrong:
                penalty = max(0, cycle - pu.assign_cycle)
                self.breakdown.charge_control_squash(penalty)
                if self.monitor is not None:
                    self.monitor.on_wrong_squash(pu.index, cycle, penalty)
                pu.reset_idle()

    def _check_store_violation(self, store_idx: int, cycle: int) -> None:
        """A store completed: squash the earliest stale speculative load."""
        entries = self.pending_viol.pop(store_idx, None)
        if not entries:
            return
        state = self.state
        victim_seq: Optional[int] = None
        victim_load = -1
        for load_idx, seq, gen in entries:
            if state.generation[seq] != gen:
                continue  # that execution was already squashed
            if seq < self.retire_seq or seq not in self.in_flight:
                continue
            if victim_seq is None or seq < victim_seq:
                victim_seq = seq
                victim_load = load_idx
        if victim_seq is None:
            return
        self.memory_squashes += 1
        if self.monitor is not None:
            self.monitor.on_memory_violation(victim_seq)
        self._learn_sync(store_idx, victim_load)
        self._squash_from(victim_seq, cycle, memory=True)

    def _inject_memory_fault(self, cycle: int) -> None:
        """Spurious ARB violation from the fault plan (if one is due)."""
        victim = self.faults.memory_fault_victim(self, cycle)
        if victim is None:
            return
        self.memory_squashes += 1
        if self.monitor is not None:
            self.monitor.on_memory_violation(victim, injected=True)
        self._squash_from(victim, cycle, memory=True)

    # --------------------------------------------------------------- assign

    def _continuation_root(self, seq: int):
        """Root of the task entered when the callee of task ``seq`` returns."""
        dyn = self.stream.tasks[seq]
        call_inst = self.stream.trace.insts[dyn.end - 1]
        blk = self.stream.partition.program.block(call_inst.block)
        assert blk.fallthrough is not None
        return (call_inst.block[0], blk.fallthrough)

    def _predict_successor(self, seq: int) -> None:
        """Predict task ``seq``'s successor; set pending on mispredict."""
        dyn = self.stream.tasks[seq]
        if dyn.target is None:
            return  # final task
        pc = self.stream.partition.program.block_pc(dyn.task.root)
        mispredicted_index = self.predictor.update(pc, dyn.target_index)
        correct = not mispredicted_index
        if correct and dyn.target.kind is TargetKind.RETURN:
            correct = self.ras.peek() == dyn.next_root
        if dyn.target.kind is TargetKind.CALL:
            self.ras.push(self._continuation_root(seq))
        elif dyn.target.kind is TargetKind.RETURN:
            self.ras.pop()
        self.predictor.push_history(pc)
        self.task_predictions += 1
        if correct and self.faults is not None and self.faults.take_control_fault(seq):
            # Injected fault: treat a correct prediction as wrong.  The
            # sequencer redirects to the (unchanged) correct successor
            # when this task completes, so only cycles are lost.
            correct = False
        if not correct:
            self.task_mispredictions += 1
            self.pending_mispredict = seq
            self.control_squashes += 1
            if self.monitor is not None:
                self.monitor.on_control_mispredict(seq)

    def _assign(self, cycle: int) -> None:
        if cycle < self.resume_cycle:
            return
        pu = self.pus[self.next_assign_pu]
        if not pu.idle:
            return
        if self.pending_mispredict is not None:
            pu.assign_wrong(cycle)
            if self.monitor is not None:
                self.monitor.on_wrong_assign(pu.index, cycle)
            self.next_assign_pu = (self.next_assign_pu + 1) % self.config.n_pus
            return
        if self.next_seq >= len(self.stream.tasks):
            return
        seq = self.next_seq
        dyn = self.stream.tasks[seq]
        pu.assign(dyn, cycle)
        self.in_flight[seq] = pu
        if self.monitor is not None:
            self.monitor.on_assign(seq, pu.index, cycle)
        self._active_span += dyn.length
        self.next_seq += 1
        self.next_assign_pu = (self.next_assign_pu + 1) % self.config.n_pus
        self._predict_successor(seq)

    # --------------------------------------------------------------- retire

    def _retire(self, cycle: int) -> None:
        if self._retiring_pu is not None:
            if cycle >= self._retire_finish:
                pu = self._retiring_pu
                for reason, count in pu.local_counts.items():
                    self.breakdown.charge(reason, count)
                seq = pu.seq
                self._active_span -= self.stream.tasks[seq].length
                del self.in_flight[seq]
                pu.reset_idle()
                if self.monitor is not None:
                    self.monitor.on_retire(seq, cycle)
                self.retire_seq += 1
                self._retiring_pu = None
            else:
                return
        pu = self.in_flight.get(self.retire_seq)
        if pu is not None and pu.done:
            pu.charge(StallReason.TASK_END, self.config.task_end_overhead)
            pu.retiring = True
            self._retiring_pu = pu
            self._retire_finish = cycle + self.config.task_end_overhead

    # ------------------------------------------------------------- run loop

    def run(self) -> SimResult:
        """Simulate until every dynamic task has retired."""
        config = self.config
        n_tasks = len(self.stream.tasks)
        cycle = 0
        if n_tasks == 0:
            result = self._result(0)
            if self.monitor is not None:
                self.monitor.on_finish(self, result)
            return result

        while self.retire_seq < n_tasks:
            if cycle > config.max_cycles:
                raise SimulationStuck(
                    f"exceeded {config.max_cycles} cycles "
                    f"(retired {self.retire_seq}/{n_tasks} tasks)"
                )
            # Phase A: completions (+ violation checks, + control resolve).
            for pu in self.pus:
                if pu.dyn_task is None:
                    continue
                for store_idx in pu.drain_completions(cycle):
                    self._check_store_violation(store_idx, cycle)
            if self.pending_mispredict is not None:
                src = self.in_flight.get(self.pending_mispredict)
                if src is not None and src.done:
                    self._squash_wrong(cycle)
                    self.next_assign_pu = (
                        self.state.pu_of_seq[self.pending_mispredict] + 1
                    ) % config.n_pus
                    self.pending_mispredict = None
                    self.resume_cycle = max(
                        self.resume_cycle,
                        cycle + config.task_mispredict_redirect,
                    )
            if self.faults is not None:
                self._inject_memory_fault(cycle)
            # Phase B: retire.
            self._retire(cycle)
            # Phase C: assign.
            self._assign(cycle)
            # Phase D: execute + accounting.
            for pu in self.pus:
                if pu.wrong:
                    continue  # charged as penalty at resolution
                if pu.dyn_task is None:
                    self.breakdown.charge(StallReason.IDLE)
                    continue
                if pu.retiring:
                    continue  # TASK_END charged up front
                if pu.done:
                    pu.charge(StallReason.LOAD_IMBALANCE)
                    continue
                issued, reason = pu.issue(cycle, self)
                pu.fetch(cycle)
                if issued:
                    pu.charge(StallReason.USEFUL)
                elif cycle < pu.assign_cycle + config.task_start_overhead:
                    pu.charge(StallReason.TASK_START)
                elif reason is not None:
                    pu.charge(reason)
                else:
                    pu.charge(StallReason.FETCH)
            self._span_accum += self._active_span
            cycle += 1
        self.cycle = cycle
        result = self._result(cycle)
        if self.monitor is not None:
            self.monitor.on_finish(self, result)
        return result

    def _result(self, cycles: int) -> SimResult:
        mean_span = self._span_accum / cycles if cycles else 0.0
        return SimResult(
            cycles=cycles,
            committed_instructions=len(self.stream.trace),
            dynamic_tasks=len(self.stream.tasks),
            task_predictions=self.task_predictions,
            task_mispredictions=self.task_mispredictions,
            control_squashes=self.control_squashes,
            memory_squashes=self.memory_squashes,
            gshare_accuracy=self.state.gshare_accuracy,
            branch_count=self.state.branch_count,
            mean_window_span=mean_span,
            breakdown=self.breakdown,
            cache_stats=self.hierarchy.stats(),
        )


def simulate(
    stream: TaskStream,
    config: Optional[SimConfig] = None,
    release: Optional[ReleaseAnalysis] = None,
    monitor=None,
    faults=None,
) -> SimResult:
    """Convenience: build a machine for ``stream`` and run it."""
    return MultiscalarMachine(stream, config, release, monitor, faults).run()
