"""Cycle-level Multiscalar timing simulator.

Trace-driven: the functional interpreter (``repro.ir.interp``)
produces the exact dynamic instruction stream; this package replays it
under a task partition on a model of the paper's hardware
(Section 4.2):

* :class:`~repro.sim.config.SimConfig` — machine parameters (defaults
  mirror the paper's 4/8-PU configurations).
* :mod:`~repro.sim.taskstream` — splits the trace into dynamic task
  instances.
* :mod:`~repro.sim.memory` — L1 I/D, L2, main memory hierarchy.
* :mod:`~repro.sim.arb` — Address Resolution Buffer and the memory
  dependence synchronisation table.
* :class:`~repro.sim.machine.MultiscalarMachine` — sequencer, PUs,
  register ring, squash/retire logic, cycle accounting.
* :class:`~repro.sim.breakdown.CycleBreakdown` — the Figure 2 loss
  categories.
"""

from repro.sim.breakdown import CycleBreakdown, StallReason
from repro.sim.config import SimConfig
from repro.sim.machine import MultiscalarMachine, SimResult, simulate
from repro.sim.taskstream import DynTask, TaskStream, build_task_stream

__all__ = [
    "CycleBreakdown",
    "DynTask",
    "MultiscalarMachine",
    "SimConfig",
    "SimResult",
    "StallReason",
    "TaskStream",
    "build_task_stream",
    "simulate",
]
