"""Packed dynamic-trace arrays, built once per task stream.

The timing model never looks at a :class:`~repro.ir.interp.DynInst`
in its hot loops: everything a replay needs is lowered here into flat
parallel arrays indexed by trace position — opcode class codes,
latencies, effective addresses, interned register producers resolved
to trace indices, per-instruction flags, and the precomputed gshare
outcome stream.  The arrays are immutable and shared: every
:class:`~repro.sim.runstate.RunState` (one per machine run) aliases
them instead of re-deriving them, so a machine sweep over one
compiled stream pays the packing cost exactly once — at
``build_task_stream`` time.

Layout choices: single-byte fields (flags, opcode classes) are
``bytearray``; rarely-read wide fields (pc, addresses) are
``array('q')``; fields read on the issue fast path (latencies, task
sequence numbers, memory producers) stay plain ``list``s of ints
because CPython list indexing is faster than unboxing from ``array``.
Register names are interned to dense integer ids while resolving
producers, after which the names are not needed at all.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from repro.ir.instructions import OpClass, Opcode
from repro.predict import GsharePredictor
from repro.sim.config import ForwardPolicy

OPCLASS_INT = 0
OPCLASS_FP = 1
OPCLASS_MEM = 2
OPCLASS_BRANCH = 3

_OPCLASS_ID = {
    OpClass.INT: OPCLASS_INT,
    OpClass.FP: OPCLASS_FP,
    OpClass.MEM: OPCLASS_MEM,
    OpClass.BRANCH: OPCLASS_BRANCH,
}


class PackedTrace:
    """Flat, immutable per-instruction arrays for one task stream."""

    def __init__(self, stream) -> None:
        trace = stream.trace
        insts = trace.insts
        n = len(insts)
        self.n = n

        self.opcls = bytearray(n)
        self.latency: List[int] = [0] * n
        self.is_load = bytearray(n)
        self.is_store = bytearray(n)
        self.is_mem = bytearray(n)
        self.is_cond_branch = bytearray(n)
        self.block_start = bytearray(n)
        self.has_write = bytearray(n)
        self.has_remote_consumer = bytearray(n)
        self.gshare_mispred = bytearray(n)
        self.pc = array("q", bytes(8 * n))
        self.addr = array("q", bytes(8 * n))
        self.producers: List[Tuple[int, ...]] = [()] * n
        self.mem_producer: List[int] = [-1] * n
        self.task_seq: List[int] = [0] * n

        for start_idx, _block in trace.block_entries:
            if start_idx < n:
                self.block_start[start_idx] = 1

        task_seq = self.task_seq
        for seq, dyn_task in enumerate(stream.tasks):
            span = dyn_task.end - dyn_task.start
            if span > 0:
                task_seq[dyn_task.start : dyn_task.end] = [seq] * span

        # Register names are interned to dense ids so the producer
        # resolution below keys its tables by small ints; the names
        # never survive into the packed arrays.
        reg_ids: Dict[str, int] = {}
        reg_id_get = reg_ids.get
        last_writer: Dict[int, int] = {}
        last_store: Dict[int, int] = {}
        gshare = GsharePredictor()
        opclass_of = _OPCLASS_ID
        no_producers: Tuple[int, ...] = ()

        opcls = self.opcls
        latency = self.latency
        is_load = self.is_load
        is_store = self.is_store
        is_mem = self.is_mem
        is_cond_branch = self.is_cond_branch
        has_write = self.has_write
        gshare_mispred = self.gshare_mispred
        pc = self.pc
        addr = self.addr
        producers = self.producers
        mem_producer = self.mem_producer

        # Cross-task consumer tracking, folded into the main packing
        # pass (producers always precede their readers in the trace,
        # and ``task_seq`` is fully populated above).  Completion of an
        # instruction without the ``cross_consumer`` flag cannot
        # unblock any *other* task: no later task reads its register
        # value and no later task's load memory-depends on it.  For
        # flagged instructions ``consumer_seqs`` lists exactly the
        # dynamic tasks whose issue decisions can observe the
        # completion — the event engine invalidates only those tasks'
        # memoized blocked-issue results instead of everyone's.
        has_remote = self.has_remote_consumer
        cross = bytearray(n)
        consumers: Dict[int, set] = {}
        consumer_entry = consumers.setdefault

        for i, dyn in enumerate(insts):
            op = dyn.op
            opcls[i] = opclass_of[op.op_class]
            latency[i] = op.latency
            pc[i] = dyn.pc
            seq = task_seq[i]
            if op is Opcode.LOAD:
                is_load[i] = 1
                is_mem[i] = 1
                assert dyn.addr is not None
                addr[i] = dyn.addr
                p = last_store.get(dyn.addr, -1)
                mem_producer[i] = p
                if p >= 0 and task_seq[p] != seq:
                    cross[p] = 1
                    consumer_entry(p, set()).add(seq)
            elif op is Opcode.STORE:
                is_store[i] = 1
                is_mem[i] = 1
                assert dyn.addr is not None
                addr[i] = dyn.addr
                last_store[dyn.addr] = i
            elif op.is_branch:
                is_cond_branch[i] = 1
                assert dyn.taken is not None
                if gshare.update(dyn.pc, dyn.taken):
                    gshare_mispred[i] = 1

            reads = dyn.reads
            if reads:
                prods = no_producers
                for name in reads:
                    r = reg_id_get(name)
                    if r is None:
                        r = reg_ids[name] = len(reg_ids)
                    w = last_writer.get(r, -1)
                    if w >= 0 and w not in prods:
                        prods = prods + (w,)
                if prods:
                    if len(prods) > 1:
                        prods = tuple(sorted(prods))
                    producers[i] = prods
                    for p in prods:
                        if task_seq[p] != seq:
                            has_remote[p] = 1
                            cross[p] = 1
                            consumer_entry(p, set()).add(seq)
            write = dyn.write
            if write is not None:
                has_write[i] = 1
                r = reg_id_get(write)
                if r is None:
                    r = reg_ids[write] = len(reg_ids)
                last_writer[r] = i

        self.cross_consumer = cross
        self.consumer_seqs: Dict[int, Tuple[int, ...]] = {
            p: tuple(seqs) for p, seqs in consumers.items()
        }

        # Issue fast path: an instruction with no register producers
        # and no memory semantics can never block on operands, memory
        # order, the ARB, or the sync table — the issue scan's only
        # questions for it are decode timing and FU budget.  Roughly
        # half of a typical trace qualifies, so the scan checks this
        # one flag before walking the dependence machinery.
        self.issue_simple = simple = bytearray(n)
        for i in range(n):
            if not producers[i] and not is_mem[i]:
                simple[i] = 1

        # Gshare outcomes are a pure function of the trace, so the
        # predictor's end-of-run statistics are frozen here.
        self.gshare_predictions = gshare.predictions
        self.gshare_accuracy = gshare.accuracy

        self._stream = stream
        #: release flags per forward policy, computed on demand.  The
        #: cached entry also remembers the ``ReleaseAnalysis`` it was
        #: derived from so a caller supplying a different analysis
        #: object gets a fresh computation instead of a stale alias.
        self._release_cache: Dict[str, Tuple[Optional[object], bytearray]] = {}

    def adopt(self, stream) -> None:
        """Bind these arrays to the stream they describe.

        Used when the arrays arrived pre-built (decoded from a
        shared-memory segment — see :mod:`repro.harness.shm`) instead
        of being packed from ``stream`` locally: the stream reference
        and the per-policy release cache are the only state that is
        process-local rather than a pure function of the trace.
        """
        self._stream = stream
        self._release_cache = {}

    def release_now(self, policy: ForwardPolicy, release=None) -> bytearray:
        """Per-instruction "forward at completion" flags for ``policy``.

        ``release`` is the :class:`~repro.compiler.regcomm.ReleaseAnalysis`
        used for :attr:`~repro.sim.config.ForwardPolicy.SCHEDULE`; when
        ``None`` a canonical analysis of the stream's partition is built.
        """
        cached = self._release_cache.get(policy.value)
        if cached is not None and (
            policy is not ForwardPolicy.SCHEDULE
            or release is None
            or cached[0] is release
        ):
            return cached[1]
        flags = self._compute_release_now(policy, release)
        self._release_cache[policy.value] = (release, flags)
        return flags

    def _compute_release_now(
        self, policy: ForwardPolicy, release
    ) -> bytearray:
        n = self.n
        flags = bytearray(n)
        if policy is ForwardPolicy.LAZY:
            return flags
        if policy is ForwardPolicy.EAGER:
            flags[:] = self.has_write
            return flags
        if release is None:
            from repro.compiler.regcomm import ReleaseAnalysis

            release = ReleaseAnalysis(self._stream.partition)
        stream = self._stream
        absorbed = stream.absorbed_flags
        tasks = stream.tasks
        task_seq = self.task_seq
        has_write = self.has_write
        is_release = release.is_release
        for i, dyn in enumerate(stream.trace.insts):
            if not has_write[i] or absorbed[i]:
                continue
            task = tasks[task_seq[i]].task
            if dyn.block in task.blocks and is_release(
                task, dyn.block, dyn.iidx, dyn.write
            ):
                flags[i] = 1
        return flags
