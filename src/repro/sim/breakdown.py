"""Cycle accounting per the paper's Figure 2 time line.

Every PU-cycle of the simulation is attributed to exactly one
category.  Scenario 1 (task retires): task start overhead, useful
cycles, intra-task data dependence delay, inter-task data
communication delay, memory stall, load imbalance, task end overhead.
Scenario 2 (task squashed): the *entire* time since the start of the
task is re-attributed to control flow or memory dependence
misspeculation penalty.  Idle PU cycles (no task assigned) are
reported separately.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class StallReason(enum.Enum):
    """Why a PU made no progress in a given cycle."""

    USEFUL = "useful"
    TASK_START = "task_start_overhead"
    TASK_END = "task_end_overhead"
    INTRA_DEP = "intra_task_dependence"
    INTER_COMM = "inter_task_communication"
    MEMORY = "memory_stall"
    SYNC_WAIT = "memory_sync_wait"
    FETCH = "fetch_stall"
    LOAD_IMBALANCE = "load_imbalance"
    IDLE = "idle"


#: dense indexing for the hot accounting paths: a PU accumulates its
#: per-task counts in a plain ``list`` slotted by these positions
#: (no enum hashing per cycle) and the breakdown folds it back into
#: the reason-keyed dict only at retire time.
REASONS: "tuple[StallReason, ...]" = tuple(StallReason)
REASON_INDEX: Dict[StallReason, int] = {r: i for i, r in enumerate(REASONS)}

# The dense index is also bound onto each member (``reason.slot``) so
# the hot paths resolve it with an attribute load instead of an
# enum-keyed dict lookup.
for _reason, _slot in REASON_INDEX.items():
    _reason.slot = _slot


@dataclass
class CycleBreakdown:
    """Accumulated PU-cycles per category across a whole run."""

    per_reason: Dict[StallReason, int] = field(
        default_factory=lambda: {reason: 0 for reason in StallReason}
    )
    control_misspeculation: int = 0
    memory_misspeculation: int = 0

    def charge(self, reason: StallReason, cycles: int = 1) -> None:
        """Add ``cycles`` to ``reason``."""
        self.per_reason[reason] += cycles

    def charge_counts(self, counts) -> None:
        """Merge a dense per-reason count list (indexed per ``REASONS``)."""
        per_reason = self.per_reason
        for i, count in enumerate(counts):
            if count:
                per_reason[REASONS[i]] += count

    def charge_control_squash(self, cycles: int) -> None:
        """Account a control flow misspeculation penalty."""
        self.control_misspeculation += cycles

    def charge_memory_squash(self, cycles: int) -> None:
        """Account a memory dependence misspeculation penalty."""
        self.memory_misspeculation += cycles

    @property
    def total_pu_cycles(self) -> int:
        """All attributed PU-cycles including squash penalties."""
        return (
            sum(self.per_reason.values())
            + self.control_misspeculation
            + self.memory_misspeculation
        )

    def as_dict(self) -> Dict[str, int]:
        """Flat mapping for reports."""
        out = {reason.value: count for reason, count in self.per_reason.items()}
        out["control_misspeculation"] = self.control_misspeculation
        out["memory_misspeculation"] = self.memory_misspeculation
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "CycleBreakdown":
        """Rebuild from an :meth:`as_dict` mapping (tolerant reader).

        Unknown keys are ignored and missing ones default to zero, so
        serialized breakdowns from other schema versions still load.
        """
        result = cls()
        for reason in StallReason:
            result.per_reason[reason] = int(data.get(reason.value, 0))
        result.control_misspeculation = int(
            data.get("control_misspeculation", 0)
        )
        result.memory_misspeculation = int(
            data.get("memory_misspeculation", 0)
        )
        return result

    def diff(self, other: "CycleBreakdown") -> Dict[str, int]:
        """Categories where ``other`` differs, as ``other - self``."""
        mine = self.as_dict()
        theirs = other.as_dict()
        return {
            name: theirs[name] - mine[name]
            for name in mine
            if theirs[name] != mine[name]
        }

    def merged(self, other: "CycleBreakdown") -> "CycleBreakdown":
        """Element-wise sum (for aggregating across runs)."""
        result = CycleBreakdown()
        for reason in StallReason:
            result.per_reason[reason] = (
                self.per_reason[reason] + other.per_reason[reason]
            )
        result.control_misspeculation = (
            self.control_misspeculation + other.control_misspeculation
        )
        result.memory_misspeculation = (
            self.memory_misspeculation + other.memory_misspeculation
        )
        return result
