"""Batched simulation kernel: advance many cells with per-PU event spans.

The fast engine (:meth:`MultiscalarMachine._run_fast`) skips cycles
only when the *whole* machine is quiescent; on every non-quiescent
cycle it still visits all PUs, and profiling shows ~3/4 of those
visits are provably redundant — memoized blocked-issue replays,
wrong-path holds, done tasks accumulating load imbalance.  The
batched engine removes them with **per-PU deferred-charge spans**:

* a PU whose last ``issue`` call blocked *and memoized* (the PR-3
  machinery: ``issue_cache_key`` against ``machine._mut_version``)
  enters a span — it is not visited again until ``span_wake``, the
  cycle :meth:`ProcessingUnit.next_event_cycle` proves is the
  earliest it could act;
* the per-cycle stall charge the reference engine would record is
  deferred: the span remembers ``(span_from, span_slot)`` and the
  next visit bulk-charges ``visit - span_from`` cycles in one add;
* every event that the reference/fast engines use to invalidate a
  memoized blocked result also *wakes* the affected spans, at the
  same cycle the reference engine would re-run the issue scan:
  ``_mut_version`` bumps wake everyone, a cross-consumer completion
  wakes exactly the consumer tasks' PUs, a retire wakes the
  retire-sensitive ones, and a PU's own drain pop wakes itself;
* results that touched the memory sync table's LRU are never
  memoized — those PUs are re-visited every cycle so the LRU
  replays in exactly the reference engine's order (other PUs may
  interleave their own touches, so skipping would reorder
  evictions);
* when *every* occupied PU is spanned and the retire/assign chains
  are parked, whole-machine skips compose on top — and unlike the
  fast engine they need no per-skip ``next_event_cycle`` probe, the
  span wakes are already known.

Phases run at the same cycles, in the same PU index order, as the
reference engine (ring egress slots, shared-cache LRU state and sync
table order are all global-order-sensitive), so results are
bit-identical; ``tests/test_batched.py`` enforces this across the
registry and the fuzz corpus.

Batch layer
-----------

:class:`BatchCohort` advances many (config, level) cells that share
one compiled workload.  Cell scheduling state is structure-of-arrays
NumPy: ``cycle[cell]``/``alive[cell]`` drive a masked frontier
(cells advance in lockstep slices of global simulated time, least
advanced first) and ``wake[cell, pu]`` snapshots the per-PU span
wakes at slice boundaries — the per-cell generalization of the fast
engine's next-event machinery; a quiescent cell's next event lands
far beyond the frontier, so the due-mask skips it without touching
its PUs.  The branchy per-cycle semantics (heap pops, LRU dicts,
ring egress scans) stay scalar Python inside :func:`advance_cell` —
measured, NumPy scalar indexing is slower than attribute access
there, and bit-identity pins the evaluation order anyway; the array
layer is where batching actually pays: one packed trace, one
compile, one release analysis shared by every cell, and vectorized
frontier/bookkeeping over cells.  See DESIGN.md §14.

NumPy is optional: without it the cohort degrades to running each
cell to completion in submission order, which is bit-identical
(cells are independent) — the property tests prove batch results
do not depend on composition or order.
"""

from __future__ import annotations

import gc
from typing import List, Optional, Sequence, TYPE_CHECKING

from repro.sim.breakdown import REASON_INDEX, StallReason

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import MultiscalarMachine, SimResult

try:  # gated: the container may lack numpy; the scalar path is exact
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via _numpy() tests
    _np = None

_NEVER = 1 << 60

_R_USEFUL = REASON_INDEX[StallReason.USEFUL]
_R_TASK_START = REASON_INDEX[StallReason.TASK_START]
_R_FETCH = REASON_INDEX[StallReason.FETCH]
_R_LOAD_IMBALANCE = REASON_INDEX[StallReason.LOAD_IMBALANCE]

#: cells sharing a compiled workload advance in lockstep slices of
#: this many simulated cycles (frontier granularity, not a skip cap:
#: a cell's internal event skip may jump far past the slice end)
SLICE_CYCLES = 1 << 14


def _numpy():
    """The numpy module, or None when unavailable (scalar fallback)."""
    return _np


def advance_cell(machine: "MultiscalarMachine", until: int) -> bool:
    """Advance one cell until ``machine.cycle >= until`` or completion.

    Returns True when every dynamic task has retired.  All loop state
    lives on the machine and its PUs, so calls are resumable — the
    cohort driver re-enters at slice boundaries.

    The loop is the reference engine's phase structure (A completions,
    mispredict resolve, B retire, C assign, D execute) with per-PU
    span skipping layered on; see the module docstring for the wake
    and charge rules.
    """
    config = machine.config
    state = machine.state
    max_cycles = config.max_cycles
    n_tasks = len(machine.stream.tasks)
    pus = machine.pus
    n_pus = len(pus)
    in_flight_map = machine.in_flight
    consumer_seqs = state.consumer_seqs
    pu_of_seq = state.pu_of_seq
    task_start_overhead, rob_size, lazy_fp = machine._tick_consts
    redirect = config.task_mispredict_redirect
    tracer = machine.tracer
    cycle = machine.cycle
    # Occupancy census on entry; kept incrementally below (recounted
    # only on cycles where assignment / retirement / squash activity
    # could have changed it).
    n_idle = 0
    for pu in pus:
        if pu.dyn_task is None and not pu.wrong:
            n_idle += 1

    while machine.retire_seq < n_tasks:
        if cycle >= until:
            machine.cycle = cycle
            return False
        if cycle > max_cycles:
            raise machine._stuck(cycle, f"exceeded {max_cycles} cycles")
        active = False
        membership_dirty = False
        wake_all = False
        mut0 = machine._mut_version

        # Phase A: completions (+ violation checks).  Span-independent:
        # every occupied PU's completion heap is guard-checked, due or
        # not — a spanned PU's wake is <= its heap head, so nothing can
        # come due mid-span, but the guard is what proves that cheaply.
        for pu in pus:
            if pu.dyn_task is None:
                continue
            in_flight = pu.in_flight
            if in_flight:
                if in_flight[0][0] > cycle:
                    continue
            elif pu.done or pu.remaining or pu.fetch_ptr < pu.dyn_task.end:
                continue
            stores, popped, global_event, cross_popped = (
                pu.drain_completions(cycle)
            )
            if popped:
                active = True
                pu.span_wake = cycle  # own pop: revisit in Phase D now
            elif pu.done and pu.span_wake > cycle:
                # The drain was a pure finalization: an empty heap
                # with nothing remaining flips ``done`` without
                # popping (e.g. a task whose whole span was charged
                # before any instruction entered the window).  The
                # flip re-slots the per-cycle charge to
                # LOAD_IMBALANCE, so the open span must be
                # reconciled now — it is not "progress" (the
                # reference engine stays quiescent here), just a
                # charge-category boundary.
                pu.span_wake = cycle
            if global_event:
                # A LAZY-policy task completed: its writes forwarded in
                # bulk, which can unblock anyone — every span must
                # re-check this very cycle.
                machine._mut_version += 1
                wake_all = True
            if cross_popped:
                for cidx in cross_popped:
                    for cs in consumer_seqs[cidx]:
                        cpu = in_flight_map.get(cs)
                        if cpu is not None:
                            cpu.issue_cache_key = -1
                            if cpu.span_wake > cycle:
                                cpu.span_wake = cycle
            for store_idx in stores:
                machine._check_store_violation(store_idx, cycle)

        # Mispredict resolve (source task completed).
        if machine.pending_mispredict is not None:
            src = in_flight_map.get(machine.pending_mispredict)
            if src is not None and src.done:
                active = True
                machine._squash_wrong(cycle)
                machine.next_assign_pu = (
                    pu_of_seq[machine.pending_mispredict] + 1
                ) % n_pus
                machine.pending_mispredict = None
                machine.resume_cycle = max(
                    machine.resume_cycle, cycle + redirect
                )

        # Phase B: retire.  A retire *completion* bumps the retire
        # version, so retire-sensitive spans (ARB capacity gates) are
        # woken into this cycle, exactly when the reference engine
        # would re-run their issue scans.  The PU that starts
        # committing is woken so Phase D reconciles its deferred
        # LOAD_IMBALANCE charges before parking it as retiring.
        if machine._retiring_pu is not None:
            if cycle >= machine._retire_finish and machine._retire(cycle):
                active = True
                membership_dirty = True
                for p2 in pus:
                    if p2.retire_sensitive and p2.span_wake > cycle:
                        p2.span_wake = cycle
                newly = machine._retiring_pu
                if newly is not None and newly.span_wake > cycle:
                    newly.span_wake = cycle
        else:
            head = in_flight_map.get(machine.retire_seq)
            if head is not None and head.done and machine._retire(cycle):
                active = True
                if head.span_wake > cycle:
                    head.span_wake = cycle

        # Phase C: assign.
        if cycle >= machine.resume_cycle:
            nxt = pus[machine.next_assign_pu]
            if nxt.dyn_task is None and not nxt.wrong and machine._assign(cycle):
                active = True
                membership_dirty = True

        # Mutation-version bumps and spans.  A LAZY bulk forward can
        # unblock anyone: wake every span into this cycle.  The other
        # bump sites — _squash_from, _squash_wrong, _learn_sync — are
        # benign for a *memoized blocked* window: a squash only clears
        # victim completions/forwards (candidates get strictly more
        # blocked, in the same stall category), and sync learning only
        # affects results that are never memoized (a fully-blocked
        # window provably never consulted the table).  Held memos are
        # re-stamped to the new version instead of woken; the
        # reference engine *does* re-run those issue scans, so the
        # bit-identity sweep verifies the invariance claim.
        mut_now = machine._mut_version
        if mut_now != mut0:
            if wake_all:
                for p2 in pus:
                    if p2.span_wake > cycle:
                        p2.span_wake = cycle
            else:
                for p2 in pus:
                    if p2.span_wake > cycle and p2.issue_cache_key == mut0:
                        p2.issue_cache_key = mut_now
            membership_dirty = True
        if membership_dirty:
            n_idle = 0
            for p2 in pus:
                if p2.dyn_task is None and not p2.wrong:
                    n_idle += 1

        # Phase D: execute + accounting, visiting only due PUs — but
        # in PU index order among them (ring egress slot allocation
        # and sync-table touches are order-sensitive).
        mut_version = machine._mut_version
        retire_version = machine._retire_version
        for i in range(n_pus):
            pu = pus[i]
            if cycle < pu.span_wake:
                continue  # held: charges deferred, nothing to observe
            slot = pu.span_slot
            if slot >= 0:
                # Reconcile the deferred span charge [span_from, cycle).
                if cycle > pu.span_from:
                    pu.local_counts[slot] += cycle - pu.span_from
                pu.span_slot = -1
            if pu.wrong:
                pu.span_wake = _NEVER  # charged as penalty at resolve
                continue
            if pu.dyn_task is None:
                pu.span_wake = _NEVER  # idle: counted via n_idle
                continue
            if pu.retiring:
                pu.span_wake = _NEVER  # TASK_END charged up front
                continue
            counts = pu.local_counts
            if pu.done:
                counts[_R_LOAD_IMBALANCE] += 1
                pu.span_slot = _R_LOAD_IMBALANCE
                pu.span_from = cycle + 1
                pu.span_wake = _NEVER  # until retired or squashed
                continue
            if (
                pu.issue_cache_key == mut_version
                and cycle < pu.issue_wake
                and (
                    not pu.retire_sensitive
                    or pu.issue_retire_key == retire_version
                )
            ):
                issued = 0
                reason = pu.last_block
            elif pu.unissued:
                issued, reason = pu.issue(cycle, machine)
            else:
                pu.issue_wake = _NEVER
                pu.retire_sensitive = False
                pu.last_block = None
                pu.issue_cache_key = mut_version
                issued = 0
                reason = None
            fetched = False
            if (
                pu.pending_branch < 0
                and cycle >= pu.fetch_resume
                and pu.fetch_ptr < pu.fetch_end
                and pu.rob_count < rob_size
                and pu.fetch(cycle)
            ):
                fetched = True
                active = True
                if lazy_fp and pu.done:
                    # Task finished at fetch: its writes just bulk-
                    # forwarded.  Later-indexed PUs observe that this
                    # very cycle; earlier-indexed ones were already
                    # scanned (as in the reference order) and re-check
                    # next cycle.
                    machine._mut_version += 1
                    mut_version = machine._mut_version
                    for j in range(n_pus):
                        p2 = pus[j]
                        w = cycle if j > i else cycle + 1
                        if p2.span_wake > w:
                            p2.span_wake = w
            if issued:
                active = True
                counts[_R_USEFUL] += 1
            elif cycle < pu.assign_cycle + task_start_overhead:
                counts[_R_TASK_START] += 1
            elif reason is not None:
                counts[pu.last_slot] += 1
            else:
                counts[_R_FETCH] += 1
            if issued or fetched:
                pu.span_wake = cycle + 1  # progressed: revisit next cycle
            elif (
                pu.issue_cache_key == mut_version
                and (
                    not pu.retire_sensitive
                    or pu.issue_retire_key == retire_version
                )
            ):
                # Blocked and memoized: open a deferred-charge span up
                # to the PU's next provable event (the inline
                # equivalent of next_event_cycle(cycle + 1) — this
                # runs once per blocked visit, so the call overhead
                # was measurable).
                infl = pu.in_flight
                w = infl[0][0] if infl else _NEVER
                if (
                    pu.pending_branch < 0
                    and pu.fetch_ptr < pu.fetch_end
                    and pu.rob_count < rob_size
                ):
                    fr = pu.fetch_resume
                    if fr <= cycle:
                        fr = cycle + 1
                    if fr < w:
                        w = fr
                if pu.issue_wake < w:
                    w = pu.issue_wake
                boundary = pu.assign_cycle + task_start_overhead
                if cycle + 1 < boundary:
                    if boundary < w:
                        w = boundary
                    pu.span_slot = _R_TASK_START
                elif pu.last_block is None:
                    pu.span_slot = _R_FETCH
                else:
                    pu.span_slot = pu.last_slot
                pu.span_wake = w
                pu.span_from = cycle + 1
            else:
                # Not memoizable (sync-table LRU replay) or freshly
                # invalidated mid-cycle: full visit every cycle.
                pu.span_wake = cycle + 1

        machine._idle_accum += n_idle
        machine._span_accum += machine._active_span

        if active:
            cycle += 1
            continue

        # Machine quiescent: jump to the earliest machine-level event.
        # Unlike the fast engine, no per-PU probe is needed — the span
        # wakes are already known.  Deferred span charges need no
        # per-skip bulk add either; reconciliation at the next visit
        # covers the skipped cycles.
        t = cycle + 1
        wake = _NEVER
        if machine._retiring_pu is not None:
            wake = machine._retire_finish
        if pus[machine.next_assign_pu].idle and (
            machine.pending_mispredict is not None
            or machine.next_seq < n_tasks
        ):
            resume = machine.resume_cycle
            if resume < t:
                resume = t
            if resume < wake:
                wake = resume
        for pu in pus:
            if pu.dyn_task is not None and not pu.retiring:
                w = pu.span_wake
                if w < wake:
                    wake = w
        if wake >= _NEVER:
            raise machine._stuck(cycle, "no pending event (livelock)")
        if wake <= t:
            cycle = t
            continue
        if wake > max_cycles:
            wake = max_cycles + 1  # let the guard above raise
        skipped = wake - t
        if tracer is not None:
            tracer.on_cycle_skip(cycle, wake)
        if n_idle:
            machine._idle_accum += n_idle * skipped
        machine._span_accum += machine._active_span * skipped
        cycle = wake

    machine.cycle = cycle
    return True


def run_cell(machine: "MultiscalarMachine") -> int:
    """Run a single cell to completion; returns the final cycle count.

    This is the ``engine="batched"`` dispatch target of
    :meth:`MultiscalarMachine.run` — a cohort of one, with no driver
    overhead.  A machine with a fault plan attached falls back to the
    fast engine's loop, which already ticks every cycle under faults
    (per-cycle cooldown state forbids skipping of any kind).
    """
    if machine.faults is not None:
        return machine._run_fast()
    advance_cell(machine, _NEVER)
    return machine.cycle


class BatchCohort:
    """Advance many cells sharing one compiled workload in lockstep.

    Scheduling state is structure-of-arrays over the batch dimension:
    ``cycle[cell]`` / ``alive[cell]`` (int64/bool NumPy arrays) drive
    the masked frontier, and ``wake[cell, pu]`` snapshots every PU's
    span wake at slice boundaries.  ``step()`` advances the masked due
    set — every live cell at the frontier — by one slice each;
    quiescent cells jump their ``cycle`` far ahead inside
    :func:`advance_cell` and fall out of the due mask until the
    frontier catches up.
    """

    def __init__(
        self,
        machines: Sequence["MultiscalarMachine"],
        slice_cycles: int = SLICE_CYCLES,
    ) -> None:
        if slice_cycles < 1:
            raise ValueError("slice_cycles must be >= 1")
        self.machines = list(machines)
        self.slice_cycles = slice_cycles
        n = len(self.machines)
        self.max_pus = max(
            (len(m.pus) for m in self.machines), default=0
        )
        np = _numpy()
        self._np = np
        if np is not None:
            self.cycle = np.zeros(n, dtype=np.int64)
            self.alive = np.ones(n, dtype=bool)
            self.wake = np.full((n, self.max_pus), _NEVER, dtype=np.int64)
        else:  # scalar fallback: plain lists, same semantics
            self.cycle = [0] * n
            self.alive = [True] * n
            self.wake = [[_NEVER] * self.max_pus for _ in range(n)]

    def _publish(self, ci: int) -> None:
        """Snapshot cell ``ci``'s per-PU span wakes into ``wake[ci]``."""
        row = self.wake[ci]
        for k, pu in enumerate(self.machines[ci].pus):
            row[k] = pu.span_wake

    def frontier(self) -> Optional[int]:
        """Least cycle among live cells, or None when all finished."""
        np = self._np
        if np is not None:
            alive = self.alive
            if not alive.any():
                return None
            return int(self.cycle[alive].min())
        live = [c for c, a in zip(self.cycle, self.alive) if a]
        return min(live) if live else None

    def step(self) -> bool:
        """Advance every due cell by one slice; False when all done."""
        np = self._np
        frontier = self.frontier()
        if frontier is None:
            return False
        until = frontier + self.slice_cycles
        if np is not None:
            due = np.flatnonzero(self.alive & (self.cycle <= frontier))
        else:
            due = [
                ci
                for ci in range(len(self.machines))
                if self.alive[ci] and self.cycle[ci] <= frontier
            ]
        for ci in due:
            ci = int(ci)
            machine = self.machines[ci]
            if machine.faults is not None:
                # Fault plans forbid skipping entirely; run the cell
                # to completion on the fast engine's faulted loop.
                machine.cycle = machine._run_fast()
                finished = True
            else:
                finished = advance_cell(machine, until)
            self.cycle[ci] = machine.cycle
            self._publish(ci)
            if finished:
                self.alive[ci] = False
        return True

    def run(self) -> List["SimResult"]:
        """Drive every cell to completion; results in cell order."""
        results: List["SimResult"] = []
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for machine in self.machines:
                if len(machine.stream.tasks) == 0:
                    if self._np is not None:
                        self.alive[self.machines.index(machine)] = False
            while self.step():
                pass
        finally:
            if gc_was_enabled:
                gc.enable()
        for machine in self.machines:
            result = machine._result(machine.cycle)
            if machine.monitor is not None:
                machine.monitor.on_finish(machine, result)
            if machine.tracer is not None:
                machine.tracer.on_finish(machine, result)
            results.append(result)
        return results


def run_cohort(
    machines: Sequence["MultiscalarMachine"],
    slice_cycles: int = SLICE_CYCLES,
) -> List["SimResult"]:
    """Run a batch of machines over one workload; results in order."""
    return BatchCohort(machines, slice_cycles).run()
