"""Splitting a dynamic trace into dynamic task instances.

A dynamic task (Section 2.2) is a contiguous fragment of the dynamic
instruction stream: execution stays in the current static task while
it follows internal edges (and while inside absorbed callees) and
leaves it at the first non-internal transition.  Because tasks are
entered only at their root, every boundary lands on a block with a
rooted task — guaranteed by ``TaskPartition.validate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.compiler.task import Target, TargetKind, Task, TaskPartition
from repro.ir.block import BlockId
from repro.ir.instructions import Opcode
from repro.ir.interp import Trace
from repro.sim.packed import PackedTrace


@dataclass
class DynTask:
    """One dynamic task instance: a contiguous span of the trace."""

    seq: int
    task: Task
    start: int  #: first trace index (inclusive)
    end: int  #: last trace index (exclusive)
    target: Optional[Target]  #: actual successor descriptor (None = HALT end)
    target_index: int  #: position of ``target`` in ``task.targets`` (-1 at end)
    next_root: Optional[BlockId]  #: root block of the next dynamic task

    @property
    def length(self) -> int:
        """Dynamic instructions in this instance."""
        return self.end - self.start


class TaskStream:
    """The full dynamic task sequence of one execution."""

    def __init__(
        self,
        trace: Trace,
        partition: TaskPartition,
        tasks: List[DynTask],
        absorbed_flags: bytearray,
    ) -> None:
        self.trace = trace
        self.partition = partition
        self.tasks = tasks
        #: per trace index: 1 when executed inside an absorbed callee
        self.absorbed_flags = absorbed_flags
        self._packed: Optional[PackedTrace] = None

    @property
    def packed(self) -> PackedTrace:
        """Flat per-instruction arrays, built lazily and shared.

        ``build_task_stream`` forces the build eagerly so the packing
        cost lands with compilation, not with the first machine run.
        """
        if self._packed is None:
            self._packed = PackedTrace(self)
        return self._packed

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    def __getitem__(self, index: int) -> DynTask:
        return self.tasks[index]

    @property
    def mean_task_size(self) -> float:
        """Average dynamic instructions per dynamic task."""
        if not self.tasks:
            return 0.0
        return len(self.trace) / len(self.tasks)

    def mean_control_transfers(self) -> float:
        """Average dynamic control transfer instructions per task."""
        if not self.tasks:
            return 0.0
        return self.trace.control_transfer_count() / len(self.tasks)

    def mean_conditional_branches(self) -> float:
        """Average dynamic conditional branches per task."""
        if not self.tasks:
            return 0.0
        branches = sum(1 for d in self.trace if d.op.is_branch)
        return branches / len(self.tasks)


class TaskStreamError(RuntimeError):
    """The partition cannot explain the dynamic control flow."""


def build_task_stream(
    trace: Trace,
    partition: TaskPartition,
    packed: Optional[PackedTrace] = None,
) -> TaskStream:
    """Split ``trace`` into dynamic task instances under ``partition``.

    ``packed`` optionally donates pre-built packed arrays (e.g.
    decoded from a shared-memory segment exported by another process
    — see :mod:`repro.harness.shm`); they are adopted instead of
    re-packing the trace when their instruction count matches.
    """
    entries = trace.block_entries
    insts = trace.insts
    if not entries:
        return TaskStream(trace, partition, [], bytearray())

    absorbed = bytearray(len(insts))
    tasks: List[DynTask] = []

    def task_at(root: BlockId) -> Task:
        try:
            return partition.task_at(root)
        except KeyError:
            raise TaskStreamError(f"no task rooted at {root}") from None

    cur_task = task_at(entries[0][1])
    cur_start = 0
    cur_block = entries[0][1]
    depth = 0  # absorbed-call nesting

    def close(end: int, target: Target, next_root: Optional[BlockId]) -> None:
        nonlocal cur_task, cur_start, cur_block
        try:
            index = cur_task.targets.index(target)
        except ValueError:
            raise TaskStreamError(
                f"task {cur_task.task_id} (root {cur_task.root}) reached "
                f"target {target} not in its target list {cur_task.targets}"
            ) from None
        tasks.append(
            DynTask(
                seq=len(tasks),
                task=cur_task,
                start=cur_start,
                end=end,
                target=target,
                target_index=index,
                next_root=next_root,
            )
        )
        cur_start = end
        if next_root is not None:
            cur_task = task_at(next_root)
            cur_block = next_root

    n_entries = len(entries)
    for k in range(1, n_entries):
        s, block = entries[k]
        span_end = entries[k + 1][0] if k + 1 < n_entries else len(insts)
        last = insts[s - 1]

        if depth > 0:
            if last.op is Opcode.CALL:
                depth += 1
            elif last.op is Opcode.RET:
                depth -= 1
                if depth == 0:
                    # Returned to the continuation block in the caller.
                    if not cur_task.is_internal(cur_block, block):
                        close(s, Target(TargetKind.BLOCK, block), block)
                    else:
                        cur_block = block
            if depth > 0:
                absorbed[s:span_end] = b"\x01" * (span_end - s)
            continue

        if last.op is Opcode.CALL:
            if last.block in cur_task.absorbed_calls:
                depth = 1
                absorbed[s:span_end] = b"\x01" * (span_end - s)
            else:
                assert last.callee is not None
                close(s, Target(TargetKind.CALL, block), block)
        elif last.op is Opcode.RET:
            close(s, Target(TargetKind.RETURN), block)
        else:
            if cur_task.is_internal(cur_block, block):
                cur_block = block
            else:
                close(s, Target(TargetKind.BLOCK, block), block)

    # Final task ends the program.
    final_op = insts[-1].op
    target = Target(TargetKind.HALT) if final_op is Opcode.HALT else None
    if target is not None:
        try:
            index = cur_task.targets.index(target)
        except ValueError:
            raise TaskStreamError(
                f"final task {cur_task.task_id} lacks a HALT target"
            ) from None
    else:
        index = -1
    tasks.append(
        DynTask(
            seq=len(tasks),
            task=cur_task,
            start=cur_start,
            end=len(insts),
            target=target,
            target_index=index,
            next_root=None,
        )
    )
    stream = TaskStream(trace, partition, tasks, absorbed)
    if packed is not None and packed.n == len(insts):
        packed.adopt(stream)
        stream._packed = packed
    stream.packed  # pack eagerly: once per stream, shared by every run
    return stream
