"""Reproduction of *Task Selection for a Multiscalar Processor*
(T. N. Vijaykumar and G. S. Sohi, MICRO-31, 1998).

The package implements, from scratch:

* a small RISC-like IR with CFG and dataflow analyses (:mod:`repro.ir`),
* the paper's compiler task-selection heuristics
  (:mod:`repro.compiler`),
* synthetic SPEC95 stand-in workloads (:mod:`repro.workloads`),
* control-flow prediction hardware models (:mod:`repro.predict`),
* a trace-driven cycle-level Multiscalar simulator (:mod:`repro.sim`),
* metrics and experiment harnesses regenerating the paper's Figure 5
  and Table 1 (:mod:`repro.metrics`, :mod:`repro.experiments`),
* observability for individual runs — lifecycle tracing with
  Perfetto-loadable export, a metrics registry, and cell-by-cell run
  reports (:mod:`repro.telemetry`; ``repro trace`` / ``repro
  report``).

Quickstart::

    from repro import run_benchmark, HeuristicLevel

    record = run_benchmark("compress", HeuristicLevel.DATA_DEPENDENCE,
                           n_pus=4)
    print(record.ipc, record.mean_task_size)

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.compiler import (
    HeuristicLevel,
    SelectionConfig,
    Task,
    TaskPartition,
    select_tasks,
)
from repro.experiments.runner import RunRecord, run_benchmark
from repro.ir import IRBuilder, Interpreter, Program, Trace
from repro.sim import (
    MultiscalarMachine,
    SimConfig,
    SimResult,
    build_task_stream,
    simulate,
)
from repro.workloads import all_benchmarks, get_benchmark

__version__ = "1.0.0"

__all__ = [
    "HeuristicLevel",
    "IRBuilder",
    "Interpreter",
    "MultiscalarMachine",
    "Program",
    "RunRecord",
    "SelectionConfig",
    "SimConfig",
    "SimResult",
    "Task",
    "TaskPartition",
    "Trace",
    "all_benchmarks",
    "build_task_stream",
    "get_benchmark",
    "run_benchmark",
    "select_tasks",
    "simulate",
    "__version__",
]
