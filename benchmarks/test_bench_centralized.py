"""Distributed vs centralized benchmark (experiment id: motiv).

The paper's Section 1 motivation: a distributed processor with good
task selection competes with (and out-clocks) a wide centralized
window.  Report: ``results/centralized.txt``.
"""

from benchmarks.conftest import bench_scale, bench_subset, publish
from repro.experiments.centralized import (
    format_centralized,
    run_centralized_comparison,
)

DEFAULT_SUBSET = ["compress", "m88ksim", "go", "tomcatv", "mgrid", "wave5"]


def test_bench_centralized(benchmark, results_dir):
    names = bench_subset() or DEFAULT_SUBSET

    def run():
        return run_centralized_comparison(names, n_pus=8, scale=bench_scale())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(results_dir, "centralized.txt", format_centralized(result))

    factors = [result.break_even_clock_factor(name) for name in names]
    # On at least half the subset the distributed machine should win
    # outright (break-even below 1.0) — the paper's premise is that it
    # additionally clocks faster.
    assert sum(1 for f in factors if f < 1.0) >= len(factors) / 2
