"""Figure 2 cycle-accounting benchmark (experiment id: fig2).

Measures where the PU-cycles go (task start/end overhead, intra/inter
task data delays, memory stalls, load imbalance, misspeculation
penalties, idle) for a representative subset across the heuristic
progression.  Report: ``results/breakdown.txt``.
"""

from benchmarks.conftest import bench_scale, bench_subset, publish
from repro.experiments.breakdown import format_breakdown, run_breakdown

DEFAULT_SUBSET = ["compress", "m88ksim", "li", "tomcatv", "hydro2d", "fpppp"]


def test_bench_breakdown(benchmark, results_dir):
    names = bench_subset() or DEFAULT_SUBSET

    def run():
        return run_breakdown(names, n_pus=4, scale=bench_scale())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(results_dir, "breakdown.txt", format_breakdown(result))

    # Every run's categories must account for all attributed cycles.
    for key in result.records:
        fractions = result.fractions(*key)
        assert abs(sum(fractions.values()) - 1.0) < 1e-9
