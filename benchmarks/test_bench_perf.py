"""Simulation-engine wall-clock benchmark (experiment id: sim).

Times the smoke grid cold on both engines and publishes the
machine-readable record to ``results/BENCH_sim.json`` — the same
schema as the committed repo-root baseline, so a run here can be
diffed against it directly.  Scale/subset come from the usual
``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_SUBSET`` environment knobs via
the ``smoke`` grid definition (the grid pins its own subset; only
full-suite timing uses the ``figure5`` grid, via ``repro bench``).
"""

import json

from benchmarks.conftest import publish
from repro import bench


def test_bench_sim_engines(benchmark, results_dir):
    record = {}

    def run():
        nonlocal record
        record = bench.run_bench(
            grids=("smoke",), engines=("fast", "reference"), jobs=1
        )
        return record

    benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        results_dir,
        "BENCH_sim.json",
        json.dumps(record, indent=2, sort_keys=True) + "\n",
    )
    fast = record["grids"]["smoke@fast"]
    reference = record["grids"]["smoke@reference"]
    # The engines are bit-identical by contract; the benchmark
    # enforces it on the aggregate the grids report.
    assert fast["sim_cycles"] == reference["sim_cycles"]
    assert fast["cells"] == reference["cells"] > 0
