"""Shared configuration for the experiment benchmarks.

Each benchmark regenerates one of the paper's tables or figures and
writes the formatted report to ``results/`` (also echoed to stdout so
``pytest benchmarks/ --benchmark-only -s`` shows it inline).

Environment knobs:

* ``REPRO_BENCH_SCALE`` — workload scale factor (default 1.0; smaller
  values shrink trip counts for quick runs).
* ``REPRO_BENCH_SUBSET`` — comma-separated benchmark names to restrict
  the grid (default: the full 18-benchmark suite).
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def bench_scale() -> float:
    """Workload scale for benchmark runs."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_subset():
    """Benchmark names to run (None = all)."""
    raw = os.environ.get("REPRO_BENCH_SUBSET", "")
    return [name for name in raw.split(",") if name] or None


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Write a report file and echo it."""
    path = results_dir / name
    path.write_text(text + "\n")
    print(f"\n--- {name} ---")
    print(text)
