"""Table 1 regeneration benchmark (experiment id: tab1).

Dynamic task size, control transfer instructions per task, task and
per-branch misprediction percentages, and window span for basic block
/ control flow / data dependence tasks on the 8-PU machine.  Report:
``results/table1.txt``.
"""

from benchmarks.conftest import bench_scale, bench_subset, publish
from repro.compiler import HeuristicLevel
from repro.experiments.table1 import format_table1, run_table1


def test_bench_table1(benchmark, results_dir):
    names = bench_subset() or []

    def run():
        return run_table1(benchmarks=names, n_pus=8, scale=bench_scale())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(results_dir, "table1.txt", format_table1(result))

    # Shape assertions (Sections 4.3.2-4.3.4).
    grid_names = sorted({key[0] for key in result.records})
    larger = 0
    span_wins = 0
    for name in grid_names:
        bb = result.record(name, HeuristicLevel.BASIC_BLOCK)
        cf = result.record(name, HeuristicLevel.CONTROL_FLOW)
        dd = result.record(name, HeuristicLevel.DATA_DEPENDENCE)
        if cf.mean_task_size > bb.mean_task_size:
            larger += 1
        # Window span: data dependence tasks dominate basic blocks —
        # with near-ties allowed (fpppp's giant basic blocks already
        # span well, and its CF/DD prediction is poor; only the task
        # size heuristic helps it, as the paper reports).
        assert dd.window_span_formula > bb.window_span_formula * 0.9, name
        if dd.window_span_formula > bb.window_span_formula:
            span_wins += 1
        # Per-branch normalisation shrinks the rate whenever tasks
        # average at least one conditional branch (for B < 1 the
        # equivalent per-branch rate is legitimately higher).
        if dd.mean_branches >= 1.0:
            assert (
                dd.branch_normalized_misprediction_percent
                <= dd.task_misprediction_percent + 1e-9
            )
    assert larger >= 0.9 * len(grid_names)
    assert span_wins >= 0.85 * len(grid_names)
