"""Figure 5 regeneration benchmark (experiment id: fig5).

Reproduces the paper's central result: IPC of basic block / control
flow / data dependence / task size tasks per benchmark, at 4 and 8
PUs, for out-of-order and in-order PUs.  The report with improvement
percentages lands in ``results/figure5_*.txt``.
"""

import pytest

from benchmarks.conftest import bench_scale, bench_subset, publish
from repro.experiments.figure5 import format_figure5, run_figure5

CONFIGS = [(4, True), (8, True), (4, False), (8, False)]

_IDS = ["4pu_ooo", "8pu_ooo", "4pu_inorder", "8pu_inorder"]


@pytest.mark.parametrize("config", CONFIGS, ids=_IDS)
def test_bench_figure5(benchmark, config, results_dir):
    names = bench_subset() or []

    def run():
        return run_figure5(
            benchmarks=names, configs=[config], scale=bench_scale()
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    n_pus, ooo = config
    mode = "ooo" if ooo else "inorder"
    publish(
        results_dir,
        f"figure5_{n_pus}pu_{mode}.txt",
        format_figure5(result, configs=[config]),
    )
    # Shape assertions: heuristics must beat basic blocks on average.
    # Only meaningful on a representative sample of a suite.
    from repro.compiler import HeuristicLevel
    from repro.workloads import all_benchmarks

    grid = {key[0] for key in result.records}
    for suite in ("int", "fp"):
        members = [
            bm.name for bm in all_benchmarks()
            if bm.suite == suite and bm.name in grid
        ]
        if len(members) < 3:
            continue
        ratio = result.suite_geomean_ratio(
            suite, HeuristicLevel.DATA_DEPENDENCE, config
        )
        assert ratio > 1.0, f"{suite} suite regressed under heuristics"
