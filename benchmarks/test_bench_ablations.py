"""Ablation benchmarks (experiment ids: abl-n, abl-thresh, abl-sync,
abl-fwd).

Sweeps of the design parameters DESIGN.md calls out: the hardware
target width N, the CALL/LOOP thresholds, the memory synchronisation
table, and the register forwarding policy.  Reports land in
``results/ablation_*.txt``.
"""

from benchmarks.conftest import bench_scale, bench_subset, publish
from repro.experiments.ablations import (
    format_sweep,
    sweep_arb_size,
    sweep_forward_policy,
    sweep_max_targets,
    sweep_profile_input,
    sweep_sync_table,
    sweep_thresholds,
)

DEFAULT_SUBSET = ["compress", "m88ksim", "hydro2d"]


def _names():
    return bench_subset() or DEFAULT_SUBSET


def test_bench_ablation_max_targets(benchmark, results_dir):
    def run():
        return sweep_max_targets(_names(), values=(1, 2, 4, 8),
                                 scale=bench_scale())

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(results_dir, "ablation_max_targets.txt",
            format_sweep(records, "hardware targets N"))
    # N=1 degenerates toward basic blocks: smaller tasks than N=4.
    for name in _names():
        assert (
            records[(name, 1)].mean_task_size
            <= records[(name, 4)].mean_task_size
        )


def test_bench_ablation_thresholds(benchmark, results_dir):
    def run():
        return sweep_thresholds(_names(), values=(10, 30, 100),
                                scale=bench_scale())

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(results_dir, "ablation_thresholds.txt",
            format_sweep(records, "CALL_THRESH = LOOP_THRESH"))
    for name in _names():
        assert (
            records[(name, 100)].mean_task_size
            >= records[(name, 10)].mean_task_size
        )


def test_bench_ablation_sync_table(benchmark, results_dir):
    def run():
        return sweep_sync_table(_names(), scale=bench_scale())

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(results_dir, "ablation_sync_table.txt",
            format_sweep(records, "memory sync table"))
    for name in _names():
        assert (
            records[(name, True)].memory_squashes
            <= records[(name, False)].memory_squashes
        )


def test_bench_ablation_forward_policy(benchmark, results_dir):
    from repro.sim.config import ForwardPolicy

    def run():
        return sweep_forward_policy(_names(), scale=bench_scale())

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(results_dir, "ablation_forward_policy.txt",
            format_sweep(records, "register forwarding policy"))
    for name in _names():
        assert (
            records[(name, ForwardPolicy.EAGER)].cycles
            <= records[(name, ForwardPolicy.LAZY)].cycles
        )


def test_bench_ablation_arb_size(benchmark, results_dir):
    def run():
        return sweep_arb_size(_names(), values=(4, 32, 0),
                              scale=bench_scale())

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(results_dir, "ablation_arb_size.txt",
            format_sweep(records, "ARB entries per PU"))
    for name in _names():
        assert records[(name, 4)].cycles >= records[(name, 0)].cycles


def test_bench_ablation_profile_input(benchmark, results_dir):
    def run():
        return sweep_profile_input(_names(), scale=bench_scale())

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(results_dir, "ablation_profile_input.txt",
            format_sweep(records, "profiling input set"))
    for name in _names():
        same = records[(name, "same-input")]
        cross = records[(name, "train-profiled")]
        assert cross.ipc > 0.7 * same.ipc
