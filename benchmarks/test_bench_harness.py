"""Harness benchmarks (experiment id: harness).

Measures a small Figure-5 sub-grid through ``repro.harness`` in three
regimes — cold cache (compile + trace + simulate), warm cache (pure
artifact replay), and a two-worker process pool — and proves the
warm-cache run never re-enters the interpreter: every ledger entry is
a cache hit and the in-memory compilation cache stays empty.
"""

import time

import pytest

from benchmarks.conftest import bench_scale, bench_subset, publish
from repro.compiler import HeuristicLevel
from repro.experiments import clear_cache
from repro.experiments.figure5 import run_figure5
from repro.experiments.runner import _compile_cache
from repro.harness import ArtifactCache, RunLedger, read_ledger

SUBGRID_LEVELS = (HeuristicLevel.BASIC_BLOCK, HeuristicLevel.DATA_DEPENDENCE)
SUBGRID_CONFIGS = [(4, True), (8, True)]


def _names():
    return bench_subset() or ["compress", "go"]


def _run(cache, ledger_path, jobs):
    return run_figure5(
        benchmarks=_names(),
        configs=SUBGRID_CONFIGS,
        levels=SUBGRID_LEVELS,
        scale=bench_scale(),
        jobs=jobs,
        cache=cache,
        ledger=RunLedger(ledger_path),
    )


def test_bench_harness_cold(benchmark, results_dir, tmp_path):
    cache = ArtifactCache(tmp_path / "cache", salt="bench")

    def setup():
        clear_cache()
        cache.clear()

    result = benchmark.pedantic(
        lambda: _run(cache, tmp_path / "ledger.jsonl", jobs=1),
        setup=setup, rounds=1, iterations=1,
    )
    entries = read_ledger(tmp_path / "ledger.jsonl")
    assert all(e["cache"] == "miss" for e in entries)
    assert len(result.records) == len(entries)


def test_bench_harness_warm(benchmark, results_dir, tmp_path):
    cache = ArtifactCache(tmp_path / "cache", salt="bench")
    cold_start = time.perf_counter()
    cold = _run(cache, tmp_path / "prime.jsonl", jobs=1)
    cold_seconds = time.perf_counter() - cold_start
    clear_cache()  # drop in-memory compilations: artifacts only

    warm = benchmark.pedantic(
        lambda: _run(cache, tmp_path / "warm.jsonl", jobs=1),
        rounds=1, iterations=1,
    )
    assert warm.records == cold.records
    # No re-tracing: every job was an artifact hit and nothing was
    # recompiled (the interpreter only runs inside compile_benchmark).
    entries = read_ledger(tmp_path / "warm.jsonl")
    assert entries and all(e["cache"] == "hit" for e in entries)
    assert not _compile_cache
    warm_seconds = sum(e["wall_seconds"] for e in entries) or 1e-9
    publish(
        results_dir,
        "harness_cold_vs_warm.txt",
        "\n".join([
            "== harness: cold vs warm cache (Figure-5 sub-grid) ==",
            f"grid          : {sorted({k[0] for k in warm.records})} "
            f"x {[l.value for l in SUBGRID_LEVELS]} x {SUBGRID_CONFIGS}",
            f"cold run      : {cold_seconds:8.2f} s ({len(entries)} jobs)",
            f"warm ledger   : all {len(entries)} jobs cache hits, "
            "0 recompilations",
        ]),
    )


@pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "jobs2"])
def test_bench_harness_parallelism(benchmark, results_dir, tmp_path, jobs):
    def setup():
        clear_cache()

    result = benchmark.pedantic(
        lambda: _run(None, tmp_path / f"jobs{jobs}.jsonl", jobs=jobs),
        setup=setup, rounds=1, iterations=1,
    )
    # jobs=2 must produce the identical record grid.
    clear_cache()
    serial = _run(None, tmp_path / "check.jsonl", jobs=1)
    assert result.records == serial.records
